"""Bulk node transitions: unit contract + randomized equivalence.

``Machine.transition_bulk`` and the vectorized allocator selection
must be *decision-identical* to the scalar per-node paths — same
nodes, same order, same floats, same snapshots.  The scalar state
machine stays the executable spec; these tests pin the batched engine
against it the same way PRs 2–5 pinned the vector power mirror and
batched dispatch.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.cluster import Machine, MachineSpec, NodeState
from repro.core import (
    ClusterSimulation,
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FirstFitAllocator,
    LowPowerAllocator,
)
from repro.errors import NodeStateError
from repro.power.vector import STATE_CODES, VectorPowerMirror
from repro.power.model import NodePowerModel
from repro.policies import DynamicProvisioningPolicy, IdleShutdownPolicy
from repro.simulator.rng import RngStreams
from repro.state import (
    restore,
    result_fingerprint,
    run_checkpointed,
    sim_fingerprint,
    snapshot,
)
from repro.workload import WorkloadGenerator, WorkloadSpec

from .state_scenarios import step_until


def small_machine(n: int = 16) -> Machine:
    return Machine(MachineSpec(name="m", nodes=n, nodes_per_cabinet=4))


# ----------------------------------------------------------------------
# Machine.transition_bulk contract
# ----------------------------------------------------------------------
class TestTransitionBulk:
    def test_matches_scalar_loop(self):
        bulk, scalar = small_machine(), small_machine()
        ids = [3, 1, 7]
        bulk.transition_bulk(ids, NodeState.SHUTTING_DOWN, 50.0)
        for nid in ids:
            scalar.node(nid).transition(NodeState.SHUTTING_DOWN, 50.0)
        for m in (bulk, scalar):
            for nid in ids:
                node = m.node(nid)
                assert node.state is NodeState.SHUTTING_DOWN
                assert node.last_state_change == 50.0
                assert node.idle_since is None

    def test_idle_target_stamps_idle_since(self):
        machine = small_machine()
        machine.transition_bulk([0, 1], NodeState.BUSY, 10.0)
        machine.transition_bulk([0, 1], NodeState.IDLE, 25.0)
        assert all(machine.node(i).idle_since == 25.0 for i in (0, 1))

    def test_atomic_on_illegal_member(self):
        machine = small_machine()
        machine.node(2).transition(NodeState.SHUTTING_DOWN, 5.0)
        # Node 2 cannot go BUSY: the whole cohort must fail untouched.
        with pytest.raises(NodeStateError):
            machine.transition_bulk([0, 1, 2], NodeState.BUSY, 10.0)
        assert machine.node(0).state is NodeState.IDLE
        assert machine.node(1).state is NodeState.IDLE
        assert machine.node(2).state is NodeState.SHUTTING_DOWN

    def test_unknown_id_fails_before_mutating(self):
        machine = small_machine()
        with pytest.raises(Exception):
            machine.transition_bulk([0, 999], NodeState.BUSY, 1.0)
        assert machine.node(0).state is NodeState.IDLE

    def test_fallback_fires_per_node_listeners_in_order(self):
        machine = small_machine()
        fired = []
        for node in machine.nodes:
            node.power_listener = fired.append
        machine.transition_bulk([5, 2, 9], NodeState.BUSY, 1.0)
        assert fired == [5, 2, 9]

    def test_bulk_listener_fires_once_instead(self):
        machine = small_machine()
        per_node = []
        for node in machine.nodes:
            node.power_listener = per_node.append
        calls = []
        machine.bulk_listener = lambda ids, target, time: calls.append(
            (list(ids), target, time)
        )
        machine.transition_bulk([4, 6], NodeState.BUSY, 2.0)
        assert calls == [([4, 6], NodeState.BUSY, 2.0)]
        assert per_node == []


# ----------------------------------------------------------------------
# VectorPowerMirror.transition_rows == per-row touch
# ----------------------------------------------------------------------
class TestTransitionRows:
    def test_matches_touch_path(self):
        rng = np.random.default_rng(9)
        bulk_m, scalar_m = small_machine(), small_machine()
        bulk = VectorPowerMirror(bulk_m, NodePowerModel())
        scalar = VectorPowerMirror(scalar_m, NodePowerModel())
        bulk.machine_watts()
        scalar.machine_watts()

        legal = {
            NodeState.IDLE: [NodeState.BUSY, NodeState.SHUTTING_DOWN],
            NodeState.BUSY: [NodeState.IDLE],
            NodeState.SHUTTING_DOWN: [NodeState.OFF],
            NodeState.OFF: [NodeState.BOOTING],
            NodeState.BOOTING: [NodeState.IDLE],
        }
        for step in range(40):
            time = float(step)
            state = bulk_m.node(0).state  # cohorts share one state here
            pool = [
                n.node_id for n in bulk_m.nodes if n.state is state
            ]
            k = int(rng.integers(1, max(2, len(pool))))
            ids = list(rng.choice(pool, size=min(k, len(pool)), replace=False))
            target = legal[state][int(rng.integers(len(legal[state])))]
            busy = target is NodeState.BUSY

            for nid in ids:
                node = bulk_m.node(nid)
                node.state = target
                node.last_state_change = time
                node.idle_since = time if target is NodeState.IDLE else None
                node.running_job = "j" if busy else None
            bulk.transition_rows(
                bulk.rows_for(ids), STATE_CODES[target], time
            )

            for nid in ids:
                node = scalar_m.node(nid)
                node.state = target
                node.last_state_change = time
                node.idle_since = time if target is NodeState.IDLE else None
                node.running_job = "j" if busy else None
                scalar.touch(nid)

            assert bulk._dirty == scalar._dirty
            assert bulk._state_counts == scalar._state_counts
            np.testing.assert_array_equal(bulk.state_code, scalar.state_code)
            np.testing.assert_array_equal(bulk.idle_since, scalar.idle_since)
            np.testing.assert_array_equal(bulk.bound_jobs, scalar.bound_jobs)
            assert bulk.machine_watts() == scalar.machine_watts()

            # Keep every node in lockstep so cohorts stay same-state.
            for m, mirror in ((bulk_m, bulk), (scalar_m, scalar)):
                rest = [n.node_id for n in m.nodes if n.node_id not in ids]
                for nid in rest:
                    node = m.node(nid)
                    node.state = target
                    node.idle_since = (
                        time if target is NodeState.IDLE else None
                    )
                    node.running_job = "j" if busy else None
                    mirror.touch(nid)


# ----------------------------------------------------------------------
# End-to-end equivalence: bulk engine vs scalar spec
# ----------------------------------------------------------------------
def churn_sim(
    bulk_ops: bool,
    backend: str = "vector",
    scheduler: str = "easy",
    allocator: str = "low-power",
    seed: int = 13,
) -> ClusterSimulation:
    """64-node machine under wide-job churn with lifecycle policies:
    job starts/teardowns, cohort shutdowns and boots all exercised."""
    sched_cls = {
        "easy": EasyBackfillScheduler,
        "conservative": ConservativeBackfillScheduler,
    }[scheduler]
    alloc_cls = {
        "first-fit": FirstFitAllocator,
        "low-power": LowPowerAllocator,
    }[allocator]
    machine = Machine(MachineSpec(name="churn", nodes=64, nodes_per_cabinet=8))
    # Variability with deliberate ties: the low-power tie-break by id
    # must agree between the scalar sort and the argpartition path.
    rng = np.random.default_rng(seed + 1)
    for node, v in zip(
        machine.nodes,
        rng.choice([0.94, 0.97, 1.0, 1.03], size=len(machine.nodes)),
    ):
        node.variability = float(v)
    spec = WorkloadSpec(
        arrival_rate=80.0 / 3600.0,
        duration=8 * 3600.0,
        min_nodes=4,
        max_nodes=32,
        mean_work=1800.0,
    )
    jobs = WorkloadGenerator(spec, RngStreams(seed).stream("wl")).generate(
        count=60
    )
    return ClusterSimulation(
        machine,
        sched_cls(alloc_cls()),
        jobs,
        policies=[
            IdleShutdownPolicy(
                idle_threshold=300.0, min_spare=4, check_interval=120.0
            ),
        ],
        seed=seed,
        power_backend=backend,
        bulk_ops=bulk_ops,
    )


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("scheduler", ["easy", "conservative"])
    @pytest.mark.parametrize("allocator", ["first-fit", "low-power"])
    def test_results_identical(self, scheduler, allocator):
        ref = result_fingerprint(
            churn_sim(False, scheduler=scheduler, allocator=allocator).run()
        )
        got = result_fingerprint(
            churn_sim(True, scheduler=scheduler, allocator=allocator).run()
        )
        assert got == ref

    @pytest.mark.parametrize("backend", ["vector", "scalar"])
    def test_backends_agree_under_bulk(self, backend):
        ref = result_fingerprint(churn_sim(False, backend=backend).run())
        got = result_fingerprint(churn_sim(True, backend=backend).run())
        assert got == ref

    def test_midrun_state_fingerprints_match(self):
        # Listener-order-sensitive power cache state: the canonical
        # snapshot includes the mirror's per-row watts cache, cached
        # total and dirty set, so any divergence in how bulk events
        # fold into the cache shows up here, not just in end results.
        cuts = (3600.0, 10800.0, 21600.0)
        scalar = churn_sim(False)
        bulk = churn_sim(True)
        scalar.prepare()
        bulk.prepare()
        for cut in cuts:
            step_until(scalar, cut)
            step_until(bulk, cut)
            assert sim_fingerprint(bulk) == sim_fingerprint(scalar), cut

    def test_batched_run_matches(self):
        ref = result_fingerprint(churn_sim(False).run())
        got = result_fingerprint(churn_sim(True).run_batched())
        assert got == ref

    def test_provisioning_policy_equivalent(self):
        def build(bulk_ops):
            sim_obj = churn_sim(bulk_ops, seed=29)
            sim_obj.add_policy(
                DynamicProvisioningPolicy(
                    cap_watts=12000.0, check_interval=240.0
                )
            )
            return sim_obj

        assert result_fingerprint(build(True).run()) == result_fingerprint(
            build(False).run()
        )


class TestSnapshotRoundTrip:
    def test_bulk_run_restores_bit_identical(self):
        ref = result_fingerprint(churn_sim(True).run())
        donor = step_until(churn_sim(True), 7200.0)
        st = snapshot(donor)
        restored = restore(st, functools.partial(churn_sim, True))
        assert result_fingerprint(run_checkpointed(restored)) == ref
        assert result_fingerprint(run_checkpointed(donor)) == ref

    def test_bulk_snapshot_equals_scalar_snapshot(self):
        scalar = step_until(churn_sim(False), 7200.0)
        bulk = step_until(churn_sim(True), 7200.0)
        assert sim_fingerprint(bulk) == sim_fingerprint(scalar)
