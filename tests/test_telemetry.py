"""Tests for the telemetry substrate."""

import pytest

from repro.errors import ConfigurationError
from repro.simulator import Simulator, TraceRecorder
from repro.telemetry import (
    HierarchicalAggregator,
    LongTermArchive,
    PowerApi,
    TelemetrySampler,
)
from tests.conftest import make_job


class TestTelemetrySampler:
    def test_multi_channel_sampling(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, interval=10.0)
        power = sampler.add_channel("power", lambda: 100.0, "W")
        jobs = sampler.add_channel("jobs", lambda: 3.0)
        sampler.start()
        sim.run(until=50.0)
        assert power.latest() == 100.0
        assert jobs.mean() == 3.0
        times, values = power.series()
        assert list(times) == [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]

    def test_duplicate_channel_rejected(self):
        sampler = TelemetrySampler(Simulator())
        sampler.add_channel("x", lambda: 1.0)
        with pytest.raises(ConfigurationError):
            sampler.add_channel("x", lambda: 2.0)

    def test_stop_halts(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, interval=10.0)
        channel = sampler.add_channel("x", lambda: 1.0)
        sampler.start()
        sim.run(until=30.0)
        sampler.stop()
        count = len(channel.values)
        sim.at(100.0, lambda: None)
        sim.run()
        assert len(channel.values) == count

    def test_latest_none_before_sampling(self):
        sampler = TelemetrySampler(Simulator())
        channel = sampler.add_channel("x", lambda: 1.0)
        assert channel.latest() is None
        assert channel.mean() == 0.0

    def test_same_timestamp_sample_replaces_not_appends(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, interval=10.0)
        values = iter([1.0, 2.0])
        channel = sampler.add_channel("x", lambda: next(values, 3.0))
        sampler.sample()
        sampler.sample()  # same sim time: replaces, does not append
        assert len(channel.times) == 1
        assert channel.latest() == 2.0
        sim.at(10.0, lambda: None)
        sim.run()
        sampler.sample()
        assert list(channel.times) == [0.0, 10.0]


class TestHierarchicalAggregator:
    def _trace_with_samples(self):
        trace = TraceRecorder()
        for t in range(0, 101, 10):
            trace.emit(float(t), "power.sample", meter="m1", watts=100.0)
            trace.emit(float(t), "power.sample", meter="m2", watts=50.0)
        return trace

    def test_machine_summary(self):
        agg = HierarchicalAggregator(self._trace_with_samples())
        summary = agg.machine_summary("m1")
        assert summary.samples == 11
        assert summary.mean == pytest.approx(100.0)
        assert summary.peak == pytest.approx(100.0)
        assert summary.total_energy_joules == pytest.approx(100.0 * 100.0)

    def test_unknown_meter_empty(self):
        agg = HierarchicalAggregator(self._trace_with_samples())
        assert agg.machine_summary("ghost").samples == 0

    def test_center_summary_sums_machines(self):
        agg = HierarchicalAggregator(self._trace_with_samples())
        center = agg.center_summary(["m1", "m2"])
        assert center.mean == pytest.approx(150.0)
        assert center.total_energy_joules == pytest.approx(15_000.0)

    def test_job_summaries(self):
        job = make_job(nodes=2)
        job.start(0.0, [0, 1])
        job.complete(100.0)
        job.energy_joules = 5000.0
        agg = HierarchicalAggregator(TraceRecorder())
        summaries = agg.job_summaries([job])
        assert summaries[0].mean == pytest.approx(50.0)
        assert summaries[0].total_energy_joules == 5000.0

    def test_by_user(self):
        a = make_job(job_id="a", user="alice")
        a.energy_joules = 10.0
        b = make_job(job_id="b", user="alice")
        b.energy_joules = 5.0
        agg = HierarchicalAggregator(TraceRecorder())
        assert agg.by_user([a, b]) == {"alice": 15.0}


class TestLongTermArchive:
    def test_raw_query(self):
        archive = LongTermArchive()
        for t in range(100):
            archive.record(float(t), float(t))
        times, values = archive.query(10.0, 20.0)
        assert list(times) == list(range(10, 20))

    def test_downsampling_tiers(self):
        archive = LongTermArchive(raw_retention=600.0)
        for t in range(0, 7200, 10):
            archive.record(float(t), 100.0)
        archive.flush()
        # Raw history was expired beyond 600 s; minute tier answers.
        times, values = archive.query(0.0, 3600.0)
        assert len(times) > 0
        assert all(v == pytest.approx(100.0) for v in values)

    def test_minute_means(self):
        archive = LongTermArchive(raw_retention=60.0)
        # Two minutes: first at 100 W, second at 200 W.
        for t in range(0, 60, 10):
            archive.record(float(t), 100.0)
        for t in range(60, 120, 10):
            archive.record(float(t), 200.0)
        archive.flush()
        assert archive.mean_over(0.0, 60.0) == pytest.approx(100.0)
        assert archive.mean_over(60.0, 120.0) == pytest.approx(200.0)

    def test_out_of_order_rejected(self):
        archive = LongTermArchive()
        archive.record(10.0, 1.0)
        with pytest.raises(ConfigurationError):
            archive.record(5.0, 1.0)

    def test_retention_ordering_validated(self):
        with pytest.raises(ConfigurationError):
            LongTermArchive(raw_retention=100.0, minute_retention=50.0)

    def test_empty_query(self):
        archive = LongTermArchive()
        times, values = archive.query(0.0, 100.0)
        assert len(times) == 0
        assert archive.mean_over(0.0, 100.0) == 0.0


class TestPowerApi:
    def test_segment_measurement(self):
        sim = Simulator()
        api = PowerApi(sim, lambda: 200.0)
        sim.at(0.0, lambda: api.start_segment("solve"))
        sim.at(10.0, lambda: api.stop_segment("solve"))
        sim.run()
        (m,) = api.measurements_for("solve")
        assert m.duration == 10.0
        assert m.energy_joules == pytest.approx(2000.0)
        assert m.average_watts == pytest.approx(200.0)

    def test_nested_segments(self):
        sim = Simulator()
        api = PowerApi(sim, lambda: 100.0)
        sim.at(0.0, lambda: api.start_segment("outer"))
        sim.at(2.0, lambda: api.start_segment("inner"))
        sim.at(4.0, lambda: api.stop_segment("inner"))
        sim.at(10.0, lambda: api.stop_segment("outer"))
        sim.run()
        outer = api.measurements_for("outer")[0]
        inner = api.measurements_for("inner")[0]
        assert outer.energy_joules == pytest.approx(1000.0)
        assert inner.energy_joules == pytest.approx(200.0)

    def test_observe_refines_integration(self):
        sim = Simulator()
        level = {"w": 100.0}
        api = PowerApi(sim, lambda: level["w"])
        sim.at(0.0, lambda: api.start_segment("s"))
        # Power rises at t=5; observe captures the change point.
        def bump():
            level["w"] = 300.0
            api.observe()
        sim.at(5.0, bump)
        sim.at(10.0, lambda: api.stop_segment("s"))
        sim.run()
        (m,) = api.measurements_for("s")
        # 5 s at the old 100 W (sample-and-hold) + 5 s at the new 300 W.
        assert m.energy_joules == pytest.approx(500.0 + 1500.0)

    def test_double_start_rejected(self):
        api = PowerApi(Simulator(), lambda: 1.0)
        api.start_segment("s")
        with pytest.raises(ConfigurationError):
            api.start_segment("s")

    def test_stop_unopened_rejected(self):
        api = PowerApi(Simulator(), lambda: 1.0)
        with pytest.raises(ConfigurationError):
            api.stop_segment("ghost")

    def test_open_segments_listed(self):
        api = PowerApi(Simulator(), lambda: 1.0)
        api.start_segment("b")
        api.start_segment("a")
        assert api.open_segments == ["a", "b"]
