"""Experiment ``exp-selection``: the Section-III selection funnel.

Regenerates the 11-identified -> 9-participating funnel, the
three-part test outcomes and the interview timeline facts.  The
funnel computation runs as an executor task (module-level builder
returning a metrics mapping) so the result is cached under
``benchmarks/out/cache/`` like every simulation sweep.
"""

from __future__ import annotations

import shutil

from repro.analysis import ExperimentExecutor, VariantSpec
from repro.survey import selection_funnel
from repro.survey.selection import interview_timeline

from .conftest import OUT_DIR, write_artifact

CACHE_DIR = OUT_DIR / "cache" / "exp-selection"


def funnel_metrics(seed: int = 0) -> dict:
    """The selection funnel flattened to executor metrics."""
    funnel = selection_funnel()
    metrics = {
        "identified": float(funnel.identified),
        "participating": float(funnel.participating),
        "declined": float(funnel.declined),
        "participation_rate": float(funnel.participation_rate),
    }
    for slug, passed in funnel.passes_three_part_test.items():
        metrics[f"three_part_pass::{slug}"] = 1.0 if passed else 0.0
    return metrics


def test_bench_selection_funnel(benchmark, artifact_dir):
    shutil.rmtree(CACHE_DIR, ignore_errors=True)
    spec = VariantSpec(name="selection-funnel", build=funnel_metrics)

    def run_funnel():
        return ExperimentExecutor(cache_dir=CACHE_DIR).run([spec])

    records = benchmark(run_funnel)
    metrics = records[0].metrics
    # The benchmark loop re-ran the task; later iterations must have
    # come from the warm cache with identical values.
    warm = ExperimentExecutor(cache_dir=CACHE_DIR)
    warm_records = warm.run([spec])
    assert warm.last_executed == 0 and warm.last_cache_hits == 1
    assert warm_records[0].metrics == metrics

    timeline = interview_timeline()
    passes = {
        key.split("::", 1)[1]: value
        for key, value in metrics.items()
        if key.startswith("three_part_pass::")
    }
    lines = [
        "SECTION III — Center selection funnel",
        "",
        f"  centers identified        : {metrics['identified']:.0f}",
        f"  agreed to participate     : {metrics['participating']:.0f}",
        f"  declined                  : {metrics['declined']:.0f}",
        f"  participation rate        : {metrics['participation_rate']:.0%}",
        "",
        "  three-part test per participating center:",
    ]
    for slug, passed in passes.items():
        lines.append(f"    {slug:12s}: {'pass' if passed else 'FAIL'}")
    lines.append("")
    lines.append(f"  interviews: {timeline['start']} to {timeline['end']} "
                 f"({timeline['duration_months']} months), responses "
                 f"{timeline['response_pages']}")
    lines.append("")
    lines.append(f"  executor: cached under {CACHE_DIR.name}/, "
                 f"warm rerun hits={warm.last_cache_hits} "
                 f"executed={warm.last_executed}")
    write_artifact("exp-selection", "\n".join(lines))

    # Paper facts.
    assert metrics["identified"] == 11
    assert metrics["participating"] == 9
    assert all(passes.values())