"""Energy tags and application characterization — LRZ's production line.

Table I, LRZ production: "First time new app runs: characterized for
frequency, runtime and energy.  Administrator selects job scheduling
goal, energy to solution or best performance."  (The LoadLeveler /
LSF "energy-aware scheduling" feature set, [4], [24].)

Mechanics here:

* every job carries a ``tag`` (the energy tag of [4]);
* the first run of a tag executes at nominal frequency and is
  *characterized*: its phase response is fitted so the policy can
  predict runtime and energy at any frequency;
* subsequent runs of the tag start at the frequency matching the
  administrator's goal — minimum energy-to-solution, best performance,
  or minimum energy-delay product.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.node import Node
from ..core.epa import FunctionalCategory
from ..power.dvfs import FrequencyLadder
from ..workload.job import Job
from .base import Policy


class SchedulingGoal(enum.Enum):
    """The administrator-selected objective (Table I, LRZ)."""

    ENERGY_TO_SOLUTION = "energy-to-solution"
    BEST_PERFORMANCE = "best-performance"
    ENERGY_DELAY_PRODUCT = "energy-delay-product"


@dataclass
class TagCharacterization:
    """What the first run of a tag taught us."""

    tag: str
    sensitivity: float
    intensity: float
    runs: int = 1
    chosen_frequency: Optional[float] = None


class EnergyTagPolicy(Policy):
    """Per-tag frequency selection toward an energy goal.

    Parameters
    ----------
    goal:
        The administrator's objective.
    ladder:
        Admissible frequencies; defaults to a 6-step ladder between
        the machine's min and max frequency.
    """

    name = "energy-tags"

    def __init__(
        self,
        goal: SchedulingGoal = SchedulingGoal.ENERGY_TO_SOLUTION,
        ladder: Optional[FrequencyLadder] = None,
    ) -> None:
        super().__init__()
        self.goal = goal
        self.ladder = ladder
        self.characterizations: Dict[str, TagCharacterization] = {}

    def on_attach(self) -> None:
        if self.ladder is None:
            node = self.simulation.machine.nodes[0]
            self.ladder = FrequencyLadder.linear(
                node.min_frequency, node.max_frequency, steps=6
            )

    # -- state capture: characterizations are nested dataclasses keyed
    # by tag; the generic walk cannot rebuild them inside a dict, and
    # losing them makes a restored run re-characterize every tag at
    # nominal frequency (replay divergence).  Flat tuples round-trip.
    def __repro_getstate__(self) -> dict:
        return {
            "characterizations": {
                tag: (c.sensitivity, c.intensity, c.runs, c.chosen_frequency)
                for tag, c in self.characterizations.items()
            }
        }

    def __repro_setstate__(self, state: dict) -> None:
        self.characterizations = {
            tag: TagCharacterization(
                tag=tag, sensitivity=sens, intensity=inten,
                runs=int(runs), chosen_frequency=freq,
            )
            for tag, (sens, inten, runs, freq)
            in state["characterizations"].items()
        }

    # ------------------------------------------------------------------
    # Frequency selection
    # ------------------------------------------------------------------
    def _objective(
        self, node: Node, sensitivity: float, intensity: float, freq: float
    ) -> float:
        """Scalarized objective at *freq* (lower is better)."""
        model = self.simulation.power_model
        ratio = freq / node.max_frequency
        power = model.power_at_ratio(node, ratio, intensity)
        speed = model.speed_at_ratio(ratio, sensitivity)
        time_factor = 1.0 / speed
        energy = power * time_factor  # per unit of work
        if self.goal is SchedulingGoal.BEST_PERFORMANCE:
            return time_factor
        if self.goal is SchedulingGoal.ENERGY_TO_SOLUTION:
            return energy
        return energy * time_factor  # EDP

    def best_frequency(self, sensitivity: float, intensity: float) -> float:
        """The ladder frequency minimizing the goal for this response."""
        node = self.simulation.machine.nodes[0]
        scores = np.array(
            [
                self._objective(node, sensitivity, intensity, f)
                for f in self.ladder.frequencies
            ]
        )
        return self.ladder.frequencies[int(np.argmin(scores))]

    # ------------------------------------------------------------------
    def configure_start(self, job: Job, nodes: Sequence[Node], now: float) -> None:
        tag = job.tag or job.app_name
        known = self.characterizations.get(tag)
        if known is None:
            # Characterization run: nominal (max) frequency.
            freq = nodes[0].max_frequency
        else:
            if known.chosen_frequency is None:
                known.chosen_frequency = self.best_frequency(
                    known.sensitivity, known.intensity
                )
            freq = known.chosen_frequency
        self.simulation.rm.set_frequency(nodes, freq)
        job.assigned_frequency = freq
        # LoadLeveler/LSF EAS extends the walltime limit to match the
        # selected frequency, so DVFS never turns into walltime kills.
        ratio = freq / nodes[0].max_frequency
        sensitivity = (
            known.sensitivity if known is not None else job.mean_sensitivity
        )
        speed = self.simulation.power_model.speed_at_ratio(ratio, sensitivity)
        if speed < 1.0:
            job.walltime_request = job.walltime_request / speed

    def on_job_end(self, job: Job, now: float) -> None:
        tag = job.tag or job.app_name
        known = self.characterizations.get(tag)
        if known is None:
            # First completed run of this tag: record its response.
            # (The simulator knows the true profile; a real system fits
            # it from counters.  Measurement noise can be layered via
            # the prediction substrate.)
            self.characterizations[tag] = TagCharacterization(
                tag=tag,
                sensitivity=job.mean_sensitivity,
                intensity=job.mean_power_intensity,
            )
        else:
            known.runs += 1

    # ------------------------------------------------------------------
    @property
    def characterized_tags(self) -> List[str]:
        """Tags with a recorded characterization."""
        return sorted(self.characterizations)

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "app-characterization",
                FunctionalCategory.POWER_MONITORING,
                "first-run frequency/runtime/energy characterization per tag",
            ),
            (
                "energy-tag-dvfs",
                FunctionalCategory.POWER_CONTROL,
                f"per-tag frequency selection, goal={self.goal.value}",
            ),
        ]
