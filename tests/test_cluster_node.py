"""Tests for the node state machine and power control surface."""

import pytest

from repro.cluster import Node, NodeState
from repro.errors import NodeStateError, PowerCapError


@pytest.fixture
def node():
    return Node(node_id=0, idle_power=100.0, max_power=300.0)


class TestStateMachine:
    def test_starts_idle(self, node):
        assert node.state is NodeState.IDLE
        assert node.is_available
        assert node.is_on

    def test_assign_release_cycle(self, node):
        node.assign("j1", time=10.0)
        assert node.state is NodeState.BUSY
        assert node.running_job == "j1"
        assert not node.is_available
        node.release(time=20.0)
        assert node.state is NodeState.IDLE
        assert node.running_job is None
        assert node.idle_since == 20.0

    def test_assign_busy_node_raises(self, node):
        node.assign("j1", 0.0)
        with pytest.raises(NodeStateError):
            node.assign("j2", 1.0)

    def test_release_idle_node_raises(self, node):
        with pytest.raises(NodeStateError):
            node.release(0.0)

    def test_shutdown_boot_cycle(self, node):
        node.transition(NodeState.SHUTTING_DOWN, 0.0)
        node.transition(NodeState.OFF, 10.0)
        assert not node.is_on
        node.transition(NodeState.BOOTING, 20.0)
        assert node.is_on
        assert not node.is_available
        node.transition(NodeState.IDLE, 30.0)
        assert node.is_available

    def test_illegal_transition_raises(self, node):
        with pytest.raises(NodeStateError):
            node.transition(NodeState.OFF, 0.0)  # must shut down first

    def test_busy_cannot_shut_down(self, node):
        node.assign("j1", 0.0)
        with pytest.raises(NodeStateError):
            node.transition(NodeState.SHUTTING_DOWN, 1.0)

    def test_down_and_back(self, node):
        node.transition(NodeState.DOWN, 0.0)
        assert not node.is_on
        node.transition(NodeState.IDLE, 1.0)
        assert node.is_available

    def test_idle_since_cleared_when_busy(self, node):
        node.assign("j1", 5.0)
        assert node.idle_since is None


class TestPowerControl:
    def test_set_and_clear_cap(self, node):
        node.set_power_cap(200.0)
        assert node.power_cap == 200.0
        node.set_power_cap(None)
        assert node.power_cap is None

    def test_cap_below_floor_rejected(self, node):
        with pytest.raises(PowerCapError):
            node.set_power_cap(50.0)  # below 100 W idle

    def test_cap_floor_is_idle_power(self, node):
        assert node.cap_floor == 100.0
        node.set_power_cap(100.0)  # exactly at floor is allowed

    def test_frequency_clamped_to_range(self, node):
        node.set_frequency(10e9)
        assert node.frequency == node.max_frequency
        node.set_frequency(0.1e9)
        assert node.frequency == node.min_frequency

    def test_effective_max_power_uses_variability(self, node):
        node.variability = 1.1
        assert node.effective_max_power == pytest.approx(330.0)


class TestValidation:
    def test_rejects_zero_cores(self):
        with pytest.raises(NodeStateError):
            Node(0, cores=0)

    def test_rejects_max_below_idle(self):
        with pytest.raises(NodeStateError):
            Node(0, idle_power=300.0, max_power=100.0)

    def test_rejects_inverted_frequencies(self):
        with pytest.raises(NodeStateError):
            Node(0, max_frequency=1e9, min_frequency=2e9)
