"""Figure 1: the EPA JSRM component-interaction graph.

"Figure 1 presents an overview of the different components that may
participate in such a solution ... the tasks of an EPA JSRM solution
can be divided into four functional categories — the monitoring and
control of energy/power consumed by the resources, and their
availability."

We reproduce the figure as a typed, machine-checkable networkx
digraph: nodes are the participating components, edges are the
interactions the paper describes, and every component is annotated
with the functional categories it serves.  :func:`verify_component_graph`
asserts the structural claims (connectivity, category coverage, the
scheduler/RM coupling) and is what the `fig1` bench and tests run.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from ..core.epa import FunctionalCategory
from ..errors import SurveyError

#: Component name -> functional categories it participates in.
COMPONENT_CATEGORIES: Dict[str, Set[FunctionalCategory]] = {
    "users": set(),
    "batch queues": {FunctionalCategory.RESOURCE_MONITORING},
    "job scheduler": {
        FunctionalCategory.RESOURCE_CONTROL,
        FunctionalCategory.POWER_CONTROL,
    },
    "resource manager": {
        FunctionalCategory.RESOURCE_CONTROL,
        FunctionalCategory.POWER_CONTROL,
    },
    "compute nodes": set(),
    "i/o resources": set(),
    "interconnect": set(),
    "telemetry sensors": {
        FunctionalCategory.POWER_MONITORING,
        FunctionalCategory.RESOURCE_MONITORING,
    },
    "monitoring archive": {FunctionalCategory.POWER_MONITORING},
    "power control mechanisms": {FunctionalCategory.POWER_CONTROL},
    "electrical plant": set(),
    "cooling plant": set(),
    "electricity service provider": set(),
}

#: Directed interactions (source, target, label).
INTERACTIONS: List[Tuple[str, str, str]] = [
    ("users", "batch queues", "submit jobs"),
    ("batch queues", "job scheduler", "pending work"),
    ("job scheduler", "resource manager", "placement + configuration requests"),
    ("resource manager", "compute nodes", "configure / launch / power state"),
    ("resource manager", "i/o resources", "configure"),
    ("resource manager", "interconnect", "configure"),
    ("resource manager", "power control mechanisms", "set caps / DVFS"),
    ("power control mechanisms", "compute nodes", "enforce caps / frequencies"),
    ("telemetry sensors", "compute nodes", "instrument"),
    ("telemetry sensors", "monitoring archive", "feed samples"),
    ("monitoring archive", "job scheduler", "historical job knowledge"),
    ("telemetry sensors", "resource manager", "live power/activity"),
    ("resource manager", "electrical plant", "actuate (some cases)"),
    ("resource manager", "cooling plant", "actuate (some cases)"),
    ("electricity service provider", "electrical plant", "supply / demand requests"),
    ("electrical plant", "compute nodes", "deliver power"),
    ("cooling plant", "compute nodes", "remove heat"),
    ("job scheduler", "users", "job status / energy reports"),
]


def build_component_graph() -> nx.DiGraph:
    """The Figure-1 graph with category annotations."""
    graph = nx.DiGraph()
    for component, categories in COMPONENT_CATEGORIES.items():
        graph.add_node(component, categories=frozenset(categories))
    for source, target, label in INTERACTIONS:
        if source not in COMPONENT_CATEGORIES or target not in COMPONENT_CATEGORIES:
            raise SurveyError(f"interaction references unknown component: "
                              f"{source} -> {target}")
        graph.add_edge(source, target, label=label)
    return graph


def category_coverage(graph: nx.DiGraph) -> Dict[FunctionalCategory, List[str]]:
    """Components serving each of the four functional categories."""
    coverage: Dict[FunctionalCategory, List[str]] = {
        cat: [] for cat in FunctionalCategory
    }
    for node, attrs in graph.nodes(data=True):
        for category in attrs["categories"]:
            coverage[category].append(node)
    return coverage


def verify_component_graph(graph: nx.DiGraph) -> List[str]:
    """Check the structural claims of Figure 1; returns found problems.

    An empty list means the graph is faithful:

    * weakly connected (one integrated solution);
    * all four functional categories covered;
    * the scheduler works *through* the resource manager (edge), and
      the RM has privileged edges to nodes and the physical plant;
    * monitoring flows from sensors toward the scheduler (the
      "detailed historical knowledge" loop).
    """
    problems: List[str] = []
    if not nx.is_weakly_connected(graph):
        problems.append("component graph is not weakly connected")
    coverage = category_coverage(graph)
    for category, members in coverage.items():
        if not members:
            problems.append(f"no component covers {category.value!r}")
    for edge in [
        ("job scheduler", "resource manager"),
        ("resource manager", "compute nodes"),
        ("resource manager", "electrical plant"),
        ("resource manager", "cooling plant"),
    ]:
        if not graph.has_edge(*edge):
            problems.append(f"missing required interaction {edge[0]} -> {edge[1]}")
    try:
        path = nx.shortest_path(graph, "telemetry sensors", "job scheduler")
    except nx.NetworkXNoPath:
        problems.append("no monitoring path from sensors to scheduler")
    else:
        if len(path) < 2:
            problems.append("degenerate monitoring path")
    return problems
