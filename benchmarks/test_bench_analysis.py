"""Experiment ``exp-analysis``: the announced cross-center analysis.

Section VII promises an analysis that will "identify common themes in
the responses as well as identify any particularly noteworthy
approaches".  This bench computes it from the typed survey data:
technique adoption by maturity stage, common themes, unique
approaches, center similarity/clustering, the research-vs-production
gap and the vendor-engagement ranking.
"""

from __future__ import annotations

from repro.analysis.report import render_columns
from repro.survey import MaturityStage, SurveyAnalysis, Technique

from .conftest import write_artifact


def test_bench_survey_analysis(benchmark, artifact_dir):
    def analyse():
        analysis = SurveyAnalysis()
        return {
            "adoption": analysis.adoption(),
            "themes": analysis.common_themes(min_centers=3),
            "unique": analysis.unique_approaches(),
            "similarity": analysis.similarity_matrix(),
            "clusters": analysis.cluster_centers(num_clusters=3),
            "gap": analysis.research_production_gap(),
            "vendors": analysis.vendor_engagement(),
            "stages": analysis.stage_counts(),
        }

    out = benchmark(analyse)

    lines = ["SURVEY ANALYSIS — common themes (>=3 centers)", ""]
    rows = [
        [r.technique.value, f"{r.total_centers}",
         f"{len(r.production)}", f"{len(r.tech_dev)}", f"{len(r.research)}"]
        for r in out["themes"]
    ]
    lines.append(render_columns(
        ["technique", "centers", "prod", "dev", "research"], rows))
    lines.append("")
    lines.append("Noteworthy single-center approaches:")
    for r in out["unique"]:
        centers = (r.production or r.tech_dev or r.research)
        lines.append(f"  {r.technique.value} ({centers[0]})")
    lines.append("")
    lines.append("Center clusters (average-linkage over Jaccard):")
    for slug, label in sorted(out["clusters"].items(), key=lambda kv: kv[1]):
        lines.append(f"  cluster {label}: {slug}")
    lines.append("")
    lines.append("Research-only techniques (the research/practice gap):")
    for technique in out["gap"]["research_only"]:
        lines.append(f"  {technique.value}")
    lines.append("")
    lines.append("Vendor engagement (partner: centers):")
    for partner, centers in out["vendors"].items():
        lines.append(f"  {partner:28s}: {', '.join(centers)}")
    write_artifact("exp-analysis", "\n".join(lines))

    # Shape claims.
    assert len(out["themes"]) >= 5
    assert out["stages"][MaturityStage.PRODUCTION] >= 9
    theme_techniques = {r.technique for r in out["themes"]}
    # The survey's central observations: vendor co-development and
    # power-aware scheduling are pervasive; energy reports are common.
    assert Technique.VENDOR_COPRODUCT in theme_techniques
    assert Technique.POWER_AWARE_SCHEDULING in theme_techniques
    assert Technique.ENERGY_REPORTS in theme_techniques
    # There is a real research-to-production gap (Section VI's point).
    assert len(out["gap"]["research_only"]) >= 2
    # SLURM-ecosystem engagement dominates vendor mentions (>=3 centers).
    assert len(out["vendors"]["SchedMD (SLURM)"]) >= 3
