"""Tests for cabinets, machines and sites."""

import pytest

from repro.cluster import (
    Cabinet,
    Machine,
    MachineSpec,
    Node,
    NodeState,
    Site,
)
from repro.cluster.thermal import AmbientModel, CoolingModel
from repro.errors import ClusterError


class TestMachineSpec:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ClusterError):
            MachineSpec(name="m", nodes=0)

    def test_rejects_bad_cabinet_size(self):
        with pytest.raises(ClusterError):
            MachineSpec(name="m", nodes=4, nodes_per_cabinet=0)


class TestMachine:
    def test_builds_homogeneous_nodes(self, small_machine):
        assert len(small_machine) == 16
        assert small_machine.total_cores == 16 * 32

    def test_cabinet_partitioning(self, small_machine):
        assert len(small_machine.cabinets) == 4
        assert all(len(c) == 4 for c in small_machine.cabinets)
        # Every node has its cabinet id set.
        assert all(n.cabinet_id is not None for n in small_machine.nodes)

    def test_node_lookup(self, small_machine):
        assert small_machine.node(3).node_id == 3
        with pytest.raises(ClusterError):
            small_machine.node(99)

    def test_utilization_counts_busy(self, small_machine):
        assert small_machine.utilization() == 0.0
        small_machine.node(0).assign("j", 0.0)
        assert small_machine.utilization() == pytest.approx(1 / 16)

    def test_available_nodes(self, small_machine):
        small_machine.node(0).assign("j", 0.0)
        assert len(small_machine.available_nodes) == 15

    def test_peak_and_idle_power(self, small_machine):
        spec = small_machine.spec
        assert small_machine.peak_power == pytest.approx(16 * spec.max_power)
        assert small_machine.idle_floor_power == pytest.approx(16 * spec.idle_power)

    def test_powered_fraction(self, small_machine):
        node = small_machine.node(0)
        node.transition(NodeState.SHUTTING_DOWN, 0.0)
        node.transition(NodeState.OFF, 1.0)
        assert small_machine.powered_fraction() == pytest.approx(15 / 16)

    def test_node_count_mismatch_raises(self):
        spec = MachineSpec(name="m", nodes=4)
        with pytest.raises(ClusterError):
            Machine(spec, nodes=[Node(0), Node(1)])

    def test_duplicate_node_ids_raise(self):
        spec = MachineSpec(name="m", nodes=2)
        with pytest.raises(ClusterError):
            Machine(spec, nodes=[Node(0), Node(0)])


class TestCabinet:
    def test_power_sums(self):
        nodes = [Node(i, idle_power=100, max_power=300) for i in range(4)]
        cab = Cabinet(0, nodes)
        assert cab.peak_power == pytest.approx(1200)
        assert cab.idle_power == pytest.approx(400)
        assert cab.node_ids == [0, 1, 2, 3]


class TestSite:
    def test_requires_machine(self):
        with pytest.raises(ClusterError):
            Site("s", [])

    def test_duplicate_machine_names_raise(self, small_machine):
        other = Machine(MachineSpec(name="tiny", nodes=4))
        with pytest.raises(ClusterError):
            Site("s", [small_machine, other])

    def test_machine_lookup(self, small_machine):
        site = Site("s", [small_machine])
        assert site.machine("tiny") is small_machine
        with pytest.raises(ClusterError):
            site.machine("nope")

    def test_headroom_accounts_for_cooling(self, small_machine):
        site = Site(
            "s",
            [small_machine],
            ambient=AmbientModel(mean=20.0, seasonal_amplitude=0.0,
                                 diurnal_amplitude=0.0),
            cooling=CoolingModel(cop_max=4.0, cop_min=4.0,
                                 free_cooling_below=0.0, design_ambient=50.0),
        )
        budget = site.facility.power_budget_watts
        it = 1000.0
        # overhead = it/4
        assert site.headroom(it, 0.0) == pytest.approx(budget - it - 250.0)

    def test_max_it_power_solves_budget(self, small_machine):
        site = Site("s", [small_machine])
        t = 0.0
        max_it = site.max_it_power(t)
        # At that IT load, total facility power equals the budget.
        cop = site.cooling.cop(site.ambient.temperature(t))
        total = max_it * (1 + 1 / cop)
        assert total == pytest.approx(site.facility.power_budget_watts)

    def test_totals(self, small_machine):
        site = Site("s", [small_machine])
        assert site.total_nodes == 16
        assert site.peak_it_power == pytest.approx(small_machine.peak_power)
