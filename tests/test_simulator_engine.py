"""Tests for the discrete-event engine."""

import pytest

from repro.errors import EventOrderError, SimulationError
from repro.simulator import EventPriority, Simulator


class TestScheduling:
    def test_clock_starts_at_start_time(self):
        assert Simulator().now == 0.0
        assert Simulator(start_time=100.0).now == 100.0

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.at(5.0, lambda: order.append("b"))
        sim.at(1.0, lambda: order.append("a"))
        sim.at(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self, sim):
        order = []
        for i in range(5):
            sim.at(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self, sim):
        order = []
        sim.at(1.0, lambda: order.append("control"), priority=EventPriority.CONTROL)
        sim.at(1.0, lambda: order.append("state"), priority=EventPriority.STATE)
        sim.at(1.0, lambda: order.append("monitor"), priority=EventPriority.MONITOR)
        sim.run()
        assert order == ["state", "monitor", "control"]

    def test_after_is_relative(self, sim):
        sim.at(10.0, lambda: sim.after(5.0, lambda: None))
        sim.run()
        assert sim.now == 15.0

    def test_scheduling_in_past_raises(self, sim):
        sim.at(10.0, lambda: None)
        sim.run()
        with pytest.raises(EventOrderError):
            sim.at(5.0, lambda: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(EventOrderError):
            sim.after(-1.0, lambda: None)

    def test_args_passed_through(self, sim):
        got = []
        sim.at(1.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.at(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.active

    def test_handle_active_lifecycle(self, sim):
        handle = sim.at(1.0, lambda: None)
        assert handle.active
        assert handle.time == 1.0
        sim.run()
        # fired events are popped; the handle is no longer cancelled
        # but the event cannot fire again.
        assert sim.events_fired == 1

    def test_pending_excludes_tombstones(self, sim):
        h1 = sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        h1.cancel()
        assert sim.pending == 1


class TestRun:
    def test_run_until_advances_clock_exactly(self, sim):
        sim.at(1.0, lambda: None)
        final = sim.run(until=10.0)
        assert final == 10.0
        assert sim.now == 10.0

    def test_run_until_leaves_future_events(self, sim):
        fired = []
        sim.at(20.0, lambda: fired.append(1))
        sim.run(until=10.0)
        assert fired == []
        sim.run()
        assert fired == [1]

    def test_max_events_guard(self, sim):
        def reschedule():
            sim.after(1.0, reschedule)

        sim.at(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_step_fires_single_event(self, sim):
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_not_reentrant(self, sim):
        def inner():
            sim.run()

        sim.at(1.0, inner)
        with pytest.raises(SimulationError):
            sim.run()


class TestPeriodic:
    def test_every_fires_at_interval(self, sim):
        times = []
        sim.every(10.0, lambda: times.append(sim.now))
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_every_with_start_offset(self, sim):
        times = []
        sim.every(10.0, lambda: times.append(sim.now), start_offset=0.0)
        sim.run(until=25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_every_until_bound(self, sim):
        times = []
        sim.every(10.0, lambda: times.append(sim.now), until=25.0)
        sim.run(until=100.0)
        assert times == [10.0, 20.0]

    def test_every_cancel_stops_chain(self, sim):
        times = []
        handle = sim.every(10.0, lambda: times.append(sim.now))
        sim.at(25.0, handle.cancel)
        sim.run(until=100.0)
        assert times == [10.0, 20.0]

    def test_every_rejects_bad_interval(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_every_starting_beyond_until_is_noop(self, sim):
        handle = sim.every(10.0, lambda: None, until=5.0)
        assert not handle.active
        sim.run()
        assert sim.events_fired == 0

    def test_every_noop_handle_priority_is_int(self, sim):
        # Regression: the dummy handle stored the raw EventPriority
        # enum where at() stores a plain int.
        handle = sim.every(10.0, lambda: None, until=5.0,
                           priority=EventPriority.MONITOR)
        assert type(handle._event.priority) is int

    def test_pending_counts_only_live_events(self, sim):
        live = sim.at(1.0, lambda: None)
        dead = sim.at(2.0, lambda: None)
        dead.cancel()
        assert live.active
        assert sim.pending == 1


class TestHeapHygiene:
    """Tombstone counters and heap compaction invariants."""

    def test_pending_is_counter_not_scan(self, sim):
        handles = [sim.at(float(i + 1), lambda: None) for i in range(50)]
        assert sim.pending == 50
        for h in handles[:20]:
            h.cancel()
        assert sim.pending == 30

    def test_compaction_drops_tombstones(self, sim):
        handles = [sim.at(float(i + 1), lambda: None) for i in range(100)]
        for h in handles[:60]:
            h.cancel()
        # Compaction ran (at the 51st cancel): the heap is no longer
        # the full 100 entries, and the standing invariant holds —
        # tombstones never exceed the trigger threshold AND half the
        # heap at rest.
        assert sim.pending == 40
        assert sim.heap_size < 60
        tombstones = sim.heap_size - sim.pending
        assert (
            tombstones <= sim._COMPACT_MIN_TOMBSTONES
            or 2 * tombstones <= sim.heap_size
        )

    def test_compaction_preserves_firing_order(self, sim):
        fired = []
        handles = []
        for i in range(100):
            t = float(100 - i)  # scheduled in reverse time order
            handles.append(sim.at(t, fired.append, t))
        for h in handles[::2]:
            h.cancel()
        survivors = sorted(h.time for h in handles[1::2])
        sim.run()
        assert fired == survivors
        assert sim.events_fired == len(survivors)

    def test_events_fired_unaffected_by_compaction(self, sim):
        for i in range(10):
            sim.at(float(i + 1), lambda: None)
        doomed = [sim.at(1000.0 + i, lambda: None) for i in range(40)]
        for h in doomed:
            h.cancel()
        sim.run()
        assert sim.events_fired == 10

    def test_cancel_after_fire_keeps_counters_sane(self, sim):
        h1 = sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        sim.step()
        h1.cancel()  # already fired: must not decrement live again
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0
        assert sim.events_fired == 2

    def test_self_cancel_during_fire_is_noop(self, sim):
        holder = {}

        def action():
            holder["h"].cancel()

        holder["h"] = sim.at(1.0, action)
        sim.at(2.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        assert sim.events_fired == 2

    def test_cancel_reschedule_churn_bounds_heap(self, sim):
        # The cap-heavy pattern: every speed change cancels and
        # reschedules a completion event.  The heap must stay O(live),
        # not O(total cancellations).
        handle = sim.at(1e9, lambda: None)
        for i in range(10_000):
            handle.cancel()
            handle = sim.at(1e9 + i, lambda: None)
        assert sim.pending == 1
        assert sim.heap_size <= 2 * sim._COMPACT_MIN_TOMBSTONES + 2

    def test_periodic_chain_cancel_updates_counters(self, sim):
        ticks = []
        handle = sim.every(10.0, lambda: ticks.append(sim.now))

        def stop():
            handle.cancel()

        sim.at(35.0, stop, priority=0)
        sim.run(until=100.0)
        assert ticks == [10.0, 20.0, 30.0]
        assert sim.pending == 0


class TestPeriodicChainCorrectness:
    """Regression tests: chain exhaustion and phase-locked grids."""

    def test_exhausted_until_chain_reports_inactive(self, sim):
        # Regression: after the final tick of an until-bounded chain the
        # event had done=True, cancelled=False, so handle.active stayed
        # True forever.
        handle = sim.every(10.0, lambda: None, until=25.0)
        sim.run(until=100.0)
        assert sim.events_fired == 2
        assert not handle.active

    def test_active_chain_still_reports_active(self, sim):
        handle = sim.every(10.0, lambda: None, until=1000.0)
        sim.run(until=100.0)
        assert handle.active

    def test_chain_self_cancel_inside_action_stops_chain(self, sim):
        holder = {}
        ticks = []

        def action():
            ticks.append(sim.now)
            if len(ticks) == 2:
                holder["h"].cancel()

        holder["h"] = sim.every(10.0, action)
        sim.run(until=100.0)
        assert ticks == [10.0, 20.0]
        assert not holder["h"].active
        assert sim.pending == 0

    def test_periodic_times_stay_on_grid(self, sim):
        # Regression: next_time = now + interval accumulates one
        # rounding error per tick; 0.1 is not representable so the
        # naive recurrence drifts off the k*0.1 grid within ~10 ticks.
        times = []
        sim.every(0.1, lambda: times.append(sim.now))
        sim.run(until=1000.0)
        assert len(times) == 9_999
        for k in (1, 7, 99, 1234, 9999):
            assert times[k - 1] == 0.1 * k

    def test_grid_is_phase_locked_to_first_firing(self, sim):
        times = []
        sim.at(3.0, lambda: sim.every(0.1, lambda: times.append(sim.now)))
        sim.run(until=50.0)
        assert times[0] == 3.0 + 0.1
        assert times[100] == 3.1 + 0.1 * 100


class TestRunBatched:
    """Unit tests for the cohort-dispatch execution path."""

    def test_fires_everything_in_order(self, sim):
        order = []
        sim.at(1.0, lambda: order.append("c"), priority=EventPriority.CONTROL)
        sim.at(1.0, lambda: order.append("s"), priority=EventPriority.STATE)
        sim.at(1.0, lambda: order.append("m"), priority=EventPriority.MONITOR)
        sim.at(2.0, lambda: order.append("late"))
        sim.run_batched()
        assert order == ["s", "m", "c", "late"]
        assert sim.now == 2.0
        assert sim.pending == 0

    def test_same_instant_schedule_joins_cohort(self, sim):
        order = []

        def control():
            order.append("control")
            sim.at(sim.now, lambda: order.append("reaction"),
                   priority=EventPriority.REPORT)

        sim.at(1.0, control, priority=EventPriority.CONTROL)
        sim.at(1.0, lambda: order.append("report"),
               priority=EventPriority.REPORT)
        sim.run_batched()
        # FIFO within the REPORT tier: the pre-scheduled report has the
        # lower seq.
        assert order == ["control", "report", "reaction"]

    def test_lower_tier_event_preempts_batch(self, sim):
        order = []

        def control_a():
            order.append("control_a")
            sim.at(sim.now, lambda: order.append("state"),
                   priority=EventPriority.STATE)

        sim.at(1.0, control_a, priority=EventPriority.CONTROL)
        sim.at(1.0, lambda: order.append("control_b"),
               priority=EventPriority.CONTROL)
        sim.run_batched()
        # Heap order (time, priority, seq): the STATE event outranks
        # the remaining CONTROL event and must fire between them.
        assert order == ["control_a", "state", "control_b"]

    def test_cancel_later_event_in_own_batch(self, sim):
        order = []
        handles = {}

        def canceller():
            order.append("canceller")
            handles["victim"].cancel()

        sim.at(1.0, canceller, priority=EventPriority.STATE)
        handles["victim"] = sim.at(1.0, lambda: order.append("victim"),
                                   priority=EventPriority.CONTROL)
        sim.at(1.0, lambda: order.append("survivor"),
               priority=EventPriority.REPORT)
        sim.run_batched()
        assert order == ["canceller", "survivor"]
        assert sim.pending == 0
        assert sim.events_fired == 2

    def test_until_advances_clock_exactly(self, sim):
        sim.at(1.0, lambda: None)
        sim.at(20.0, lambda: None)
        assert sim.run_batched(until=10.0) == 10.0
        assert sim.events_fired == 1
        sim.run_batched()
        assert sim.events_fired == 2

    def test_max_events_guard(self, sim):
        def reschedule():
            sim.after(1.0, reschedule)

        sim.at(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run_batched(max_events=100)

    def test_not_reentrant(self, sim):
        def inner():
            sim.run_batched()

        sim.at(1.0, inner)
        with pytest.raises(SimulationError):
            sim.run_batched()

    def test_stop_mid_batch_preserves_rest_of_cohort(self, sim):
        order = []
        for i in range(5):
            sim.at(1.0, lambda i=i: order.append(i))
        sim.run_batched(stop=lambda: len(order) >= 2)
        assert order == [0, 1]
        assert sim.pending == 3
        # The survivors went back to the heap; a plain stepped run
        # continues exactly where the batch left off.
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_stop_before_first_event(self, sim):
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.run_batched(stop=lambda: True)
        assert fired == []
        assert sim.pending == 1

    def test_exception_mid_batch_flushes_survivors(self, sim):
        order = []

        def boom():
            order.append("boom")
            raise RuntimeError("action failed")

        sim.at(1.0, lambda: order.append("first"))
        sim.at(1.0, boom)
        sim.at(1.0, lambda: order.append("last"))
        with pytest.raises(RuntimeError):
            sim.run_batched()
        assert order == ["first", "boom"]
        assert sim.pending == 1
        sim.run()
        assert order == ["first", "boom", "last"]

    def test_counters_match_stepped_run(self, sim):
        a = Simulator()
        b = Simulator()
        for s in (a, b):
            for i in range(10):
                s.at(1.0, lambda: None, priority=EventPriority.CONTROL)
            h = [s.at(1.0, lambda: None) for _ in range(4)]
            for handle in h[:2]:
                handle.cancel()
            s.every(5.0, lambda: None, until=50.0)
        a.run(until=60.0)
        b.run_batched(until=60.0)
        assert a.events_fired == b.events_fired
        assert a.pending == b.pending == 0
        assert a.now == b.now

    def test_periodic_chains_run_batched(self, sim):
        times = []
        sim.every(10.0, lambda: times.append(sim.now), until=45.0)
        sim.run_batched(until=100.0)
        assert times == [10.0, 20.0, 30.0, 40.0]

    def test_compaction_mid_batch_keeps_heap_alive(self, sim):
        # Regression: a fired action cancels enough future events to
        # trigger tombstone compaction, then schedules new work.  The
        # dispatch loop must keep seeing the (compacted) heap — the
        # follow-up event and surviving victims all still fire.
        fired = []
        victims = [
            sim.at(100.0, lambda i=i: fired.append(("victim", i)))
            for i in range(40)
        ]

        def churn():
            fired.append(("churn", sim.now))
            for handle in victims[:30]:
                handle.cancel()
            sim.at(50.0, lambda: fired.append(("late", sim.now)))

        sim.at(0.0, churn)
        sim.run_batched()
        assert sim._tombstones == 0  # compaction really ran
        assert ("late", 50.0) in fired
        assert [f for f in fired if f[0] == "victim"] == [
            ("victim", i) for i in range(30, 40)
        ]
        assert sim.pending == 0 and sim.heap_size == 0
        assert sim.events_fired == 12  # churn + late + 10 survivors
