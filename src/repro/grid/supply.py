"""Dual-source power supply — RIKEN's grid vs. gas-turbine decision.

Table I, RIKEN research: "Integrating job scheduler info with decision
to use grid vs. gas turbine energy."  The K computer site co-generates
with gas turbines; when grid prices spike (or the grid asks for load
shedding), the site can shift load to the turbines — but turbines have
a capacity limit and their own fuel cost.  The decision per interval
is therefore: given forecast demand (from the job scheduler!), which
source — or mix — is cheaper?
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .esp import ElectricityPriceSchedule


@dataclass(frozen=True)
class SupplyDecision:
    """Chosen power mix for one interval."""

    grid_watts: float
    turbine_watts: float
    cost_per_hour: float

    @property
    def total_watts(self) -> float:
        """Total supplied power."""
        return self.grid_watts + self.turbine_watts


class DualSourceSupply:
    """Cost-optimal split of demand between grid and gas turbine.

    Parameters
    ----------
    grid_schedule:
        The ESP tariff for grid energy.
    turbine_capacity_watts:
        Maximum turbine output.
    turbine_cost_per_kwh:
        Fuel + O&M cost of turbine energy (roughly flat).
    """

    def __init__(
        self,
        grid_schedule: ElectricityPriceSchedule,
        turbine_capacity_watts: float,
        turbine_cost_per_kwh: float,
    ) -> None:
        if turbine_capacity_watts < 0:
            raise ConfigurationError("turbine capacity must be >= 0")
        if turbine_cost_per_kwh < 0:
            raise ConfigurationError("turbine cost must be >= 0")
        self.grid_schedule = grid_schedule
        self.turbine_capacity_watts = turbine_capacity_watts
        self.turbine_cost_per_kwh = turbine_cost_per_kwh

    def decide(self, time: float, demand_watts: float) -> SupplyDecision:
        """Cheapest feasible split for *demand_watts* at *time*.

        With a linear cost model the optimum is bang-bang: take all
        demand from the cheaper source up to its capacity, remainder
        from the other.
        """
        if demand_watts < 0:
            raise ConfigurationError("demand must be >= 0")
        grid_price = self.grid_schedule.price_at(time)
        if self.turbine_cost_per_kwh < grid_price:
            turbine = min(demand_watts, self.turbine_capacity_watts)
            grid = demand_watts - turbine
        else:
            grid = demand_watts
            turbine = 0.0
        cost = (grid / 1e3) * grid_price + (turbine / 1e3) * self.turbine_cost_per_kwh
        return SupplyDecision(grid, turbine, cost)

    def daily_cost(self, demand_watts: float, samples: int = 24) -> float:
        """Cost of holding *demand_watts* flat for one day.

        Samples are spaced at ``24 / samples``-hour intervals across
        the whole day, so any sample count sees every tariff band in
        proportion (``samples != 24`` previously only covered the first
        ``samples`` hours, biasing the estimate toward the night band).
        """
        if samples < 1:
            raise ConfigurationError("samples must be >= 1")
        step_hours = 24.0 / samples
        total = 0.0
        for i in range(samples):
            decision = self.decide(i * step_hours * 3600.0, demand_watts)
            total += decision.cost_per_hour * step_hours
        return total
