"""Experiment ``exp-engine``: substrate performance.

Not a paper artifact — the sanity benches that keep the simulator
usable at scale: raw event throughput, machine power evaluation, a
10k-job end-to-end run, and workload generation speed.
"""

from __future__ import annotations

from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.simulator import RngStreams, Simulator
from repro.units import HOUR
from repro.workload import WorkloadGenerator, WorkloadSpec

from .conftest import bench_machine, bench_workload


def test_bench_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = 100_000
        for i in range(count):
            sim.at(float(i % 1000), lambda: None)
        sim.run()
        return sim.events_fired

    fired = benchmark.pedantic(run_events, rounds=3, iterations=1)
    assert fired == 100_000


def test_bench_machine_power_evaluation(benchmark):
    machine = bench_machine(1024)
    sim = ClusterSimulation(machine, EasyBackfillScheduler(), [])
    watts = benchmark(sim.machine_power)
    assert watts > 0


def test_bench_workload_generation(benchmark):
    def generate():
        spec = WorkloadSpec(arrival_rate=1.0, duration=10_000.0, max_nodes=256)
        rng = RngStreams(5).stream("gen")
        return WorkloadGenerator(spec, rng).generate(count=10_000)

    jobs = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(jobs) == 10_000


def test_bench_end_to_end_simulation(benchmark):
    """A full day on 128 nodes with ~1.5k jobs."""

    def run():
        machine = bench_machine(128)
        jobs = bench_workload(seed=61, count=1500, nodes=128,
                              rate_per_hour=120.0, mean_work_hours=0.3)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                seed=1, sample_interval=300.0,
                                trace_enabled=False)
        return sim.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.metrics.jobs_completed >= 1400


def test_bench_cancel_heavy_churn(benchmark):
    """Cancel/reschedule churn: the cap-heavy pattern where every speed
    change cancels and reschedules a completion event.  Tombstone
    compaction must keep the heap bounded by the live count, not by
    the total number of cancellations."""

    def churn():
        sim = Simulator()
        live = [sim.at(1e12 + i, lambda: None) for i in range(200)]
        for i in range(100_000):
            slot = i % 200
            live[slot].cancel()
            live[slot] = sim.at(1e12 + i, lambda: None)
        return sim

    sim = benchmark.pedantic(churn, rounds=3, iterations=1)
    assert sim.pending == 200
    # Bounded heap: compaction keeps tombstones under half the heap
    # (plus the trigger threshold), nowhere near the 100k cancelled.
    assert sim.heap_size <= 2 * (200 + sim._COMPACT_MIN_TOMBSTONES)
