"""Multi-system site simulation: inter-system power budget sharing.

Two surveyed behaviours are inherently *inter-system*:

* Tokyo Tech (tech development): "Inter-system power capping.
  TSUBAME2 and TSUBAME3 will need to share the facility power budget";
* CEA (production): "Manually shutting down nodes to shift power
  budget between systems".

A :class:`SiteSimulation` runs several :class:`ClusterSimulation`
instances on **one shared event engine**, and a
:class:`BudgetCoordinator` periodically re-divides the facility power
budget among them proportionally to demand (queue backlog + running
draw), resizing each machine's :class:`~repro.power.budget.PowerBudget`
slice and steering each machine's enforcement policy.

The per-machine enforcement hook is deliberately generic: the
coordinator calls ``set_budget(watts)`` on any attached policy that
has it (``DvfsBudgetPolicy``, ``PowerAwareAdmissionPolicy``,
``DynamicProvisioningPolicy``, ``DynamicPowerSharingPolicy`` all
expose a ``budget_watts``/``cap_watts`` attribute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..power.budget import PowerBudget
from ..simulator.engine import Simulator
from ..simulator.events import EventPriority
from ..units import check_positive
from .simulation import ClusterSimulation, SimulationResult


def _policy_budget_attr(policy) -> Optional[str]:
    """The attribute carrying a policy's steerable budget, if any."""
    for attr in ("budget_watts", "cap_watts", "limit_watts"):
        if hasattr(policy, attr):
            return attr
    return None


@dataclass
class MachineSlice:
    """One machine's share of the site budget."""

    simulation: ClusterSimulation
    budget: PowerBudget
    #: Minimum watts this machine must keep (its idle floor by default).
    floor_watts: float = 0.0


class BudgetCoordinator:
    """Demand-proportional division of a site budget among machines.

    Demand per machine = current draw + the nominal draw of its queue
    backlog (bounded lookahead).  Each machine keeps at least its
    floor; the surplus follows demand.  Every reallocation resizes the
    budget tree (validating the invariant) and pushes the new limit
    into each machine's steerable policies.
    """

    def __init__(
        self,
        site_budget: PowerBudget,
        slices: Sequence[MachineSlice],
        interval: float = 600.0,
    ) -> None:
        if not slices:
            raise ConfigurationError("coordinator needs at least one machine")
        self.site_budget = site_budget
        self.slices = list(slices)
        self.interval = check_positive("interval", interval)
        self.reallocations = 0

    # ------------------------------------------------------------------
    def _demand(self, sl: MachineSlice) -> float:
        simulation = sl.simulation
        draw = simulation.machine_power()
        node = simulation.machine.nodes[0]
        per_node = node.max_power - node.idle_power
        backlog = sum(
            job.nodes for job in simulation.queue.pending()[:16]
        )
        return draw + backlog * per_node

    def reallocate(self, now: float) -> Dict[str, float]:
        """Re-divide the site budget; returns machine -> new watts.

        The division is always feasible: with zero total demand (an
        all-idle site) the surplus splits evenly, and floors that no
        longer fit the envelope (e.g. the coordinator was built with
        floors exceeding the site budget) are scaled down
        proportionally — never below a slice's committed watts — so
        :meth:`PowerBudget.resize` cannot raise mid-simulation.
        """
        limit = self.site_budget.limit_watts
        committed = [sl.budget.committed for sl in self.slices]
        floors = [max(sl.floor_watts, c, 1.0)
                  for sl, c in zip(self.slices, committed)]
        total_floor = sum(floors)
        if total_floor > limit:
            # Infeasible floors: shrink the scalable part (floor minus
            # committed) of every slice by one common factor.
            scalable = [f - c for f, c in zip(floors, committed)]
            total_scalable = sum(scalable)
            avail = max(0.0, limit - sum(committed))
            scale = avail / total_scalable if total_scalable > 0 else 0.0
            floors = [c + s * scale for c, s in zip(committed, scalable)]
            total_floor = sum(floors)
        surplus = max(0.0, limit - total_floor)
        demands = [max(0.0, self._demand(sl) - floor)
                   for sl, floor in zip(self.slices, floors)]
        total_demand = sum(demands)

        targets = []
        for floor, demand in zip(floors, demands):
            share = (surplus * demand / total_demand
                     if total_demand > 0 else surplus / len(self.slices))
            targets.append(floor + share)

        # Apply shrinks first so grows have headroom in the tree.
        order = sorted(
            range(len(self.slices)),
            key=lambda i: targets[i] - self.slices[i].budget.limit_watts,
        )
        out: Dict[str, float] = {}
        for i in order:
            sl = self.slices[i]
            target = max(targets[i], 1e-6)
            # Clamp to what the tree can actually grant: float error in
            # the proportional division must not trip resize().
            grantable = sl.budget.limit_watts + self.site_budget.headroom
            target = max(min(target, grantable), sl.budget.committed)
            sl.budget.resize(target)
            out[sl.simulation.machine.name] = target
            for policy in sl.simulation.policies:
                attr = _policy_budget_attr(policy)
                if attr is not None:
                    setattr(policy, attr, target)
        self.site_budget.validate()
        self.reallocations += 1
        return out


class SiteSimulation:
    """Several machines, one event engine, one facility budget.

    Parameters
    ----------
    simulations:
        ClusterSimulations built with a **shared** ``sim`` (and
        optionally a shared trace).  Construction order defines the
        budget-tree order.
    site_budget_watts:
        The facility envelope to divide.
    coordinator_interval:
        Reallocation period, seconds (None disables coordination, for
        uncoordinated baselines).
    """

    def __init__(
        self,
        simulations: Sequence[ClusterSimulation],
        site_budget_watts: float,
        coordinator_interval: Optional[float] = 600.0,
    ) -> None:
        simulations = list(simulations)
        if len(simulations) < 1:
            raise ConfigurationError("need at least one simulation")
        engines = {id(s.sim) for s in simulations}
        if len(engines) != 1:
            raise ConfigurationError(
                "all simulations must share one Simulator (pass sim=...)"
            )
        names = [s.machine.name for s in simulations]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate machine names: {names}")
        self.simulations = simulations
        self.sim: Simulator = simulations[0].sim

        check_positive("site_budget_watts", site_budget_watts)
        floor_total = sum(s.machine.idle_floor_power for s in simulations)
        if site_budget_watts < floor_total:
            raise ConfigurationError(
                f"site budget {site_budget_watts:.0f} W below the combined "
                f"idle floor {floor_total:.0f} W"
            )

        self.site_budget = PowerBudget("site", site_budget_watts)
        self.slices: List[MachineSlice] = []
        equal = site_budget_watts / len(simulations)
        for simulation in simulations:
            child = self.site_budget.subdivide(
                simulation.machine.name, equal
            )
            self.slices.append(
                MachineSlice(
                    simulation,
                    child,
                    floor_watts=simulation.machine.idle_floor_power,
                )
            )

        self.coordinator: Optional[BudgetCoordinator] = None
        if coordinator_interval is not None:
            self.coordinator = BudgetCoordinator(
                self.site_budget, self.slices, coordinator_interval
            )

    # ------------------------------------------------------------------
    def site_power(self) -> float:
        """Combined instantaneous IT power of all machines."""
        return sum(s.machine_power() for s in self.simulations)

    def _push_budgets(self) -> None:
        """Install each slice's current limit into its machine's
        steerable policies (static splits are still enforced splits)."""
        for sl in self.slices:
            for policy in sl.simulation.policies:
                attr = _policy_budget_attr(policy)
                if attr is not None:
                    setattr(policy, attr, sl.budget.limit_watts)

    def run(
        self,
        until: Optional[float] = None,
        stall_timeout: float = 30.0 * 86400.0,
    ) -> List[SimulationResult]:
        """Drive the shared loop; returns one result per machine."""
        for simulation in self.simulations:
            simulation.prepare()
        self._push_budgets()
        if self.coordinator is not None:
            self.coordinator.reallocate(self.sim.now)
            self.sim.every(
                self.coordinator.interval,
                lambda: self.coordinator.reallocate(self.sim.now),
                priority=EventPriority.CONTROL,
                name="site-budget-coordinator",
            )
        if until is not None:
            self.sim.run(until=until)
        else:
            last_progress = -1
            last_progress_time = self.sim.now
            while not all(s.all_jobs_terminal for s in self.simulations):
                if not self.sim.step():
                    break
                progress = sum(s.progress_count for s in self.simulations)
                if progress != last_progress:
                    last_progress = progress
                    last_progress_time = self.sim.now
                elif self.sim.now - last_progress_time > stall_timeout:
                    break
        return [s.finalize() for s in self.simulations]
