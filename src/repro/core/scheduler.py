"""Scheduler interface and the FCFS baseline.

"The job scheduler examines the overall set of pending work waiting to
run on the computer and makes decisions about which jobs to place next
onto the computational nodes" (Section II-A).  A scheduler here is a
pure decision function: given a :class:`SchedulingContext` snapshot it
returns the list of jobs to start *now* and on which nodes.  All
actuation (node binding, event scheduling, power control) happens in
:class:`~repro.core.simulation.ClusterSimulation`, so schedulers stay
deterministic and unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..cluster.machine import Machine
from ..cluster.node import Node
from ..workload.job import Job
from .allocator import Allocator, FirstFitAllocator


@dataclass(frozen=True)
class RunningJobInfo:
    """Scheduler-visible view of one running job.

    ``expected_end`` is based on the user's walltime request — a hard
    upper bound, since jobs are terminated at their walltime.  This is
    what makes backfill reservations sound even when power management
    slows jobs down.
    """

    job: Job
    node_ids: Tuple[int, ...]
    expected_end: float


@dataclass
class SchedulingContext:
    """Snapshot handed to :meth:`Scheduler.schedule`.

    Attributes
    ----------
    now:
        Current simulated time.
    machine:
        The machine (read-only use).
    pending:
        Queued jobs in merged priority order.
    available:
        Idle nodes usable right now (already filtered by policies,
        e.g. maintenance-affected nodes removed).
    running:
        Running-job views with conservative end estimates.
    admit:
        EPA admission predicate: policies veto job starts (power
        budget exceeded, prediction says too hungry, ...).  Schedulers
        must consult it before deciding to start a job.
    usable_node_count:
        Number of nodes that can eventually become available (powered
        or bootable, not down/maintenance) — the capacity horizon for
        reservations.
    """

    now: float
    machine: Machine
    pending: List[Job]
    available: List[Node]
    running: List[RunningJobInfo]
    admit: Callable[[Job], bool] = field(default=lambda job: True)
    usable_node_count: int = 0

    def free_count(self) -> int:
        """Number of immediately usable nodes."""
        return len(self.available)


@dataclass(frozen=True)
class StartDecision:
    """One job start: which job, on which nodes."""

    job: Job
    nodes: Tuple[Node, ...]


class Scheduler:
    """Base class for schedulers.

    Parameters
    ----------
    allocator:
        Node-selection strategy used once a job is cleared to start.
    """

    name = "base"

    def __init__(self, allocator: Optional[Allocator] = None) -> None:
        self.allocator = allocator or FirstFitAllocator()

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        """Return the job starts to perform at ``ctx.now``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _allocate(
        self, ctx: SchedulingContext, job: Job, pool: Sequence[Node]
    ) -> Tuple[Node, ...]:
        """Pick nodes for *job* from *pool* via the allocator."""
        chosen = self.allocator.select(ctx.machine, list(pool), job.nodes)
        return tuple(chosen)


class FcfsScheduler(Scheduler):
    """Strict first-come-first-served.

    Starts jobs in queue order; the first job that cannot start (not
    enough nodes, or vetoed by admission) blocks everything behind it.
    The canonical lower-bound baseline of the backfilling literature.
    """

    name = "fcfs"

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        decisions: List[StartDecision] = []
        pool = list(ctx.available)
        for job in ctx.pending:
            if job.nodes > len(pool) or not ctx.admit(job):
                break
            nodes = self._allocate(ctx, job, pool)
            chosen_ids = {n.node_id for n in nodes}
            pool = [n for n in pool if n.node_id not in chosen_ids]
            decisions.append(StartDecision(job, nodes))
        return decisions
