"""Replay and divergence detection.

A :class:`RunRecorder` hooks the engine's observer to record a
``(event_index, time, fingerprint)`` stream during a live run without
perturbing it (the fingerprint probe reads state but never flushes
caches).  :func:`replay_from` restores a checkpoint, re-runs it with
the same recorder, and reports the first diverging event — turning
"the restored run is bit-identical" and "backend A matches backend B"
into generic, debuggable checks.

:func:`lockstep_divergence` drives two simulations event-by-event in
lockstep and, at the first fingerprint mismatch, snapshots both sides
and names the differing state paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..errors import StateError
from .capture import restore, snapshot
from .checkpoint import run_checkpointed
from .fingerprint import diff_states, light_fingerprint


@dataclass(frozen=True)
class FingerprintEntry:
    """One probe of the fingerprint stream."""

    index: int  # engine.events_fired after the probed event
    time: float
    digest: str


@dataclass
class DivergenceReport:
    """First point where two runs disagree."""

    index: int
    expected: Optional[FingerprintEntry]
    actual: Optional[FingerprintEntry]
    state_diff: List[Tuple[str, Any, Any]] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        lines = [f"first divergence at event #{self.index}:",
                 f"  expected: {self.expected}",
                 f"  actual:   {self.actual}"]
        for path, a, b in self.state_diff:
            lines.append(f"  {path}: {a!r} != {b!r}")
        return "\n".join(lines)


class RunRecorder:
    """Record a per-event fingerprint stream through the engine
    observer.  Non-perturbing; at most one recorder per engine."""

    def __init__(self, sim_obj, every: int = 1,
                 probe: Callable[[Any], str] = light_fingerprint) -> None:
        if every < 1:
            raise StateError(f"recorder stride must be >= 1, got {every}")
        self.sim_obj = sim_obj
        self.every = every
        self.probe = probe
        self.entries: List[FingerprintEntry] = []
        self._attached = False

    def attach(self) -> "RunRecorder":
        engine = self.sim_obj.sim
        if engine.observer is not None:
            raise StateError("engine already has an observer attached")
        engine.observer = self._observe
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.sim_obj.sim.observer = None
            self._attached = False

    def _observe(self, event) -> None:
        engine = self.sim_obj.sim
        if engine.events_fired % self.every == 0:
            self.entries.append(FingerprintEntry(
                engine.events_fired, engine.now, self.probe(self.sim_obj)
            ))

    def __enter__(self) -> "RunRecorder":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()


def compare_streams(
    reference: List[FingerprintEntry], actual: List[FingerprintEntry]
) -> Optional[DivergenceReport]:
    """First mismatch between two streams, aligned by event index.

    Entries present in only one stream (before the other starts, e.g. a
    reference recorded from t=0 compared against a replay from a
    mid-run checkpoint) are ignored; overlapping indices must agree.
    """
    by_index = {e.index: e for e in reference}
    for entry in actual:
        ref = by_index.get(entry.index)
        if ref is None:
            continue
        if ref.digest != entry.digest or ref.time != entry.time:
            return DivergenceReport(entry.index, ref, entry)
    return None


def replay_from(
    state,
    factory: Callable[[], object],
    reference: List[FingerprintEntry],
    every: int = 1,
    until: Optional[float] = None,
    probe: Callable[[Any], str] = light_fingerprint,
) -> Optional[DivergenceReport]:
    """Restore *state*, re-run it recording fingerprints with the same
    stride, and compare against *reference*.

    Returns None when the replay is fingerprint-identical over the
    overlapping window, else the first divergence.
    """
    sim_obj = restore(state, factory)
    recorder = RunRecorder(sim_obj, every=every, probe=probe)
    with recorder:
        run_checkpointed(sim_obj, until=until)
    return compare_streams(reference, recorder.entries)


def lockstep_divergence(
    sim_a,
    sim_b,
    max_events: Optional[int] = None,
    probe: Callable[[Any], str] = light_fingerprint,
) -> Optional[DivergenceReport]:
    """Step two prepared-or-fresh simulations in lockstep; at the first
    differing fingerprint, snapshot both and report the state diff.

    The probe must be backend-agnostic for cross-backend comparisons
    (the default is: both backends produce bit-identical physics, which
    the power-vector equivalence tests pin).
    """
    sim_a.prepare()
    sim_b.prepare()
    fired = 0
    while True:
        # Stop on the run() condition (all jobs terminal), not on heap
        # exhaustion: periodic chains (the power meter) reschedule
        # themselves forever, so the heap never empties.
        done_a = sim_a.all_jobs_terminal
        done_b = sim_b.all_jobs_terminal
        if done_a and done_b:
            return None
        if done_a != done_b:
            return DivergenceReport(
                sim_a.sim.events_fired,
                FingerprintEntry(sim_a.sim.events_fired, sim_a.sim.now,
                                 "terminal" if done_a else "running"),
                FingerprintEntry(sim_b.sim.events_fired, sim_b.sim.now,
                                 "terminal" if done_b else "running"),
            )
        stepped_a = sim_a.sim.step()
        stepped_b = sim_b.sim.step()
        if not stepped_a and not stepped_b:
            return None
        fired += 1
        fp_a = probe(sim_a)
        fp_b = probe(sim_b)
        if stepped_a != stepped_b or fp_a != fp_b:
            try:
                diff = diff_states(snapshot(sim_a), snapshot(sim_b))
            except StateError:
                diff = []
            return DivergenceReport(
                sim_a.sim.events_fired,
                FingerprintEntry(sim_a.sim.events_fired, sim_a.sim.now, fp_a),
                FingerprintEntry(sim_b.sim.events_fired, sim_b.sim.now, fp_b),
                state_diff=diff,
            )
        if max_events is not None and fired >= max_events:
            return None
