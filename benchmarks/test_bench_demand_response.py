"""Experiment ``exp-demand-response``: grid/ESP interaction.

The motivating scenario of the survey (Bates et al. [6]): the ESP asks
the site to stay under a reduced limit during a demand-response
window.  Compares an unaware site (violates the DR limit) against a
DR-aware one (complies by vetoing starts and shedding idle nodes),
and prices both against a day/night tariff.  Also regenerates RIKEN's
grid-vs-gas-turbine supply decision across a day.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.analysis.report import render_columns
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.grid import (
    DemandResponseEvent,
    DualSourceSupply,
    ElectricityPriceSchedule,
    ElectricityServiceProvider,
    GridEventSchedule,
)
from repro.policies import DemandResponsePolicy
from repro.units import HOUR

from .conftest import bench_machine, bench_workload, write_artifact


def _run(aware: bool):
    machine = bench_machine(48)
    limit = machine.peak_power * 0.45
    events = GridEventSchedule([
        DemandResponseEvent(4 * HOUR, 8 * HOUR, limit),
    ])
    policies = [DemandResponsePolicy(events, check_interval=300.0)] if aware else []
    jobs = bench_workload(seed=53, count=140, nodes=48, rate_per_hour=60.0)
    sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                            copy.deepcopy(jobs), policies=policies, seed=1)
    result = sim.run()
    times, watts = result.meter.series()
    mask = (times >= 4 * HOUR) & (times < 8 * HOUR)
    violation = float((watts[mask] > limit * 1.001).mean()) if mask.any() else 0.0
    esp = ElectricityServiceProvider(
        ElectricityPriceSchedule.day_night(0.25, 0.08),
        demand_limit_watts=limit,
        penalty_per_kwh=2.0,
    )
    # Price only the DR window against the contracted limit.
    cost = esp.cost_of(list(times[mask]), list(watts[mask]))
    return result.metrics, violation, cost


def test_bench_demand_response(benchmark, artifact_dir):
    def sweep():
        return {aware: _run(aware) for aware in (False, True)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        ["aware" if aware else "unaware", f"{violation:.0%}",
         f"{cost:.2f}", f"{m.jobs_completed}", f"{m.mean_wait:.0f}"]
        for aware, (m, violation, cost) in results.items()
    ]
    write_artifact(
        "exp-demand-response",
        "EXP-DEMAND-RESPONSE — DR window compliance "
        "(limit 45% of peak, hours 4-8)\n\n"
        + render_columns(
            ["site", "window>limit", "window cost", "done", "wait[s]"], rows,
        ),
    )

    unaware = results[False]
    aware = results[True]
    # The unaware site violates the DR request for a large share of the
    # window; the aware one complies.
    assert unaware[1] > 0.3
    assert aware[1] <= 0.05
    # Compliance saves money under the penalty tariff.
    assert aware[2] < unaware[2]
    # Work is deferred or slowed, never killed; the odd walltime
    # timeout from event-capping is the only acceptable loss.
    assert aware[0].jobs_killed == 0
    assert aware[0].jobs_completed >= 0.97 * unaware[0].jobs_completed


def test_bench_dual_supply_decision(benchmark, artifact_dir):
    """RIKEN's research line: grid vs gas turbine across a day."""
    supply = DualSourceSupply(
        ElectricityPriceSchedule.day_night(0.28, 0.07),
        turbine_capacity_watts=12_000.0,
        turbine_cost_per_kwh=0.15,
    )

    def decide_day():
        return [supply.decide(h * HOUR, 15_000.0) for h in range(24)]

    decisions = benchmark(decide_day)
    rows = [
        [f"{h:02d}:00", f"{d.grid_watts / 1e3:.1f}",
         f"{d.turbine_watts / 1e3:.1f}", f"{d.cost_per_hour:.2f}"]
        for h, d in enumerate(decisions)
    ]
    write_artifact(
        "exp-dual-supply",
        "EXP-DUAL-SUPPLY — grid vs gas turbine over one day "
        "(15 kW demand)\n\n"
        + render_columns(["hour", "grid[kW]", "turbine[kW]", "cost/h"], rows),
    )
    # Night: grid is cheaper than the turbine -> all grid.
    assert decisions[2].turbine_watts == 0.0
    # Day: turbine runs at capacity, remainder from grid.
    assert decisions[12].turbine_watts == 12_000.0
    assert decisions[12].grid_watts == 3_000.0
    # Demand is always met.
    assert all(np.isclose(d.total_watts, 15_000.0) for d in decisions)
