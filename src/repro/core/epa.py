"""The EPA coordinator: Figure 1's four functional categories.

"Depending on the complexity of the implementation, the tasks of an
EPA JSRM solution can be divided into four functional categories — the
monitoring and control of energy/power consumed by the resources, and
their availability."  The coordinator is the registry that wires a
concrete deployment: which components monitor resources, which control
them, which monitor energy/power and which control it.  It is what the
Figure-1 reproduction (:mod:`repro.survey.components`) introspects,
and it lets a configured simulation describe itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List


class FunctionalCategory(enum.Enum):
    """The four functional categories of Figure 1."""

    RESOURCE_MONITORING = "resource monitoring"
    RESOURCE_CONTROL = "resource control"
    POWER_MONITORING = "energy/power monitoring"
    POWER_CONTROL = "energy/power control"


@dataclass(frozen=True)
class EpaComponent:
    """One registered component of an EPA JSRM solution."""

    name: str
    category: FunctionalCategory
    description: str = ""


@dataclass
class EpaCoordinator:
    """Registry of an EPA JSRM deployment's components.

    A complete solution (in the Figure-1 sense) covers all four
    categories; :meth:`coverage` reports which are present.
    """

    components: List[EpaComponent] = field(default_factory=list)

    def register(
        self, name: str, category: FunctionalCategory, description: str = ""
    ) -> None:
        """Register a component under a functional category."""
        self.components.append(EpaComponent(name, category, description))

    def by_category(self) -> Dict[FunctionalCategory, List[EpaComponent]]:
        """Components grouped by category (all categories present)."""
        groups: Dict[FunctionalCategory, List[EpaComponent]] = {
            cat: [] for cat in FunctionalCategory
        }
        for comp in self.components:
            groups[comp.category].append(comp)
        return groups

    def coverage(self) -> Dict[FunctionalCategory, bool]:
        """Which of the four categories have at least one component."""
        groups = self.by_category()
        return {cat: bool(members) for cat, members in groups.items()}

    @property
    def is_complete(self) -> bool:
        """True when all four functional categories are covered."""
        return all(self.coverage().values())
