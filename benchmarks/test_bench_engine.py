"""Experiment ``exp-engine``: substrate performance.

Not a paper artifact — the sanity benches that keep the simulator
usable at scale: raw event throughput, machine power evaluation, a
10k-job end-to-end run, and workload generation speed.

The batched-dispatch benches time ``run_batched()`` against the
stepped reference on the three regimes that matter for the ROADMAP's
million-node target, asserting the two paths produce identical
results before comparing clocks:

* ``dispatch storm`` — deep same-instant cohorts with reactive
  same-instant scheduling (the schedule-pass-at-now pattern);
* ``congested 64k`` — a congested 64k-node machine under an idle-
  shutdown policy, where scalar per-tick O(N) node scans dominate and
  the batched path reads the SoA lifecycle view (the ≥5x acceptance
  scenario);
* ``sparse multi-year SWF replay`` — singleton timestamps for years of
  simulated time (the fast path must not regress);
* ``million node`` — the 1M-node synthetic cluster, gated behind
  ``REPRO_BENCH_1M=1`` (minutes of wall time).

Timings land in ``benchmarks/out/BENCH_engine.json`` (machine-readable,
uploaded by the CI engine-bench job).
"""

from __future__ import annotations

import io
import json
import os
import time

import pytest

from repro.cluster import NodeState
from repro.core import (
    ClusterSimulation,
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FcfsScheduler,
    LowPowerAllocator,
)
from repro.policies import IdleShutdownPolicy
from repro.simulator import EventPriority, RngStreams, Simulator
from repro.state import result_fingerprint
from repro.units import HOUR
from repro.workload import WorkloadGenerator, WorkloadSpec
from repro.workload.swf import read_swf, roundtrip_string

from .conftest import OUT_DIR, bench_machine, bench_workload


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into benchmarks/out/BENCH_engine.json."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_engine.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def _timed(fn) -> tuple:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def test_bench_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = 100_000
        for i in range(count):
            sim.at(float(i % 1000), lambda: None)
        sim.run()
        return sim.events_fired

    fired = benchmark.pedantic(run_events, rounds=3, iterations=1)
    assert fired == 100_000


def test_bench_machine_power_evaluation(benchmark):
    machine = bench_machine(1024)
    sim = ClusterSimulation(machine, EasyBackfillScheduler(), [])
    watts = benchmark(sim.machine_power)
    assert watts > 0


def test_bench_workload_generation(benchmark):
    def generate():
        spec = WorkloadSpec(arrival_rate=1.0, duration=10_000.0, max_nodes=256)
        rng = RngStreams(5).stream("gen")
        return WorkloadGenerator(spec, rng).generate(count=10_000)

    jobs = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(jobs) == 10_000


def test_bench_end_to_end_simulation(benchmark):
    """A full day on 128 nodes with ~1.5k jobs."""

    def run():
        machine = bench_machine(128)
        jobs = bench_workload(seed=61, count=1500, nodes=128,
                              rate_per_hour=120.0, mean_work_hours=0.3)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                seed=1, sample_interval=300.0,
                                trace_enabled=False)
        return sim.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.metrics.jobs_completed >= 1400


def test_bench_cancel_heavy_churn(benchmark):
    """Cancel/reschedule churn: the cap-heavy pattern where every speed
    change cancels and reschedules a completion event.  Tombstone
    compaction must keep the heap bounded by the live count, not by
    the total number of cancellations."""

    def churn():
        sim = Simulator()
        live = [sim.at(1e12 + i, lambda: None) for i in range(200)]
        for i in range(100_000):
            slot = i % 200
            live[slot].cancel()
            live[slot] = sim.at(1e12 + i, lambda: None)
        return sim

    sim = benchmark.pedantic(churn, rounds=3, iterations=1)
    assert sim.pending == 200
    # Bounded heap: compaction keeps tombstones under half the heap
    # (plus the trigger threshold), nowhere near the 100k cancelled.
    assert sim.heap_size <= 2 * (200 + sim._COMPACT_MIN_TOMBSTONES)


# ----------------------------------------------------------------------
# Batched dispatch (BENCH_engine.json)
# ----------------------------------------------------------------------
def _storm(cohorts: int = 1500, width: int = 24):
    """Deep same-instant cohorts: each CONTROL event schedules a
    same-instant REPORT reaction (the schedule-pass-at-now pattern)."""
    sim = Simulator()

    def react():
        pass

    def control():
        sim.at(sim.now, react, priority=EventPriority.REPORT)

    for t in range(cohorts):
        for _ in range(width):
            sim.at(float(t), control, priority=EventPriority.CONTROL)
    return sim


def test_bench_dispatch_storm(artifact_dir):
    stepped = _storm()
    t_step, _ = _timed(lambda: [None for _ in iter(stepped.step, False)])
    batched = _storm()
    t_batch, _ = _timed(batched.run_batched)
    assert batched.events_fired == stepped.events_fired == 1500 * 24 * 2
    speedup = t_step / t_batch
    _update_bench_json("dispatch_storm", {
        "cohorts": 1500, "width": 24,
        "events": batched.events_fired,
        "stepped_s": round(t_step, 6),
        "batched_s": round(t_batch, 6),
        "speedup": round(speedup, 3),
    })
    # Same-instant storms must not be slower batched.
    assert speedup >= 0.9


def _congested_64k(nodes: int = 65_536):
    """Energy-aware center under a demand burst: the machine starts
    mostly powered down, a deep queue of narrow jobs arrives faster
    than the powered pool can serve, and a tight idle-shutdown control
    loop (15 s) boots and sheds nodes to track demand.  Per tick the
    scalar path scans all 64k nodes three times; the batched path
    reads the SoA lifecycle view."""
    machine = bench_machine(nodes, boot_time=300.0, shutdown_time=120.0)
    jobs = bench_workload(seed=97, count=1500, nodes=128,
                          rate_per_hour=600.0, mean_work_hours=1.5)
    sim = ClusterSimulation(
        machine,
        FcfsScheduler(),
        jobs,
        policies=[IdleShutdownPolicy(idle_threshold=3600.0, min_spare=512,
                                     check_interval=15.0)],
        seed=5,
        sample_interval=300.0,
        trace_enabled=False,
    )
    # Pre-run state, not timed: all but 1024 nodes already off at t=0.
    for node in machine.nodes[1024:]:
        node.transition(NodeState.SHUTTING_DOWN, 0.0)
        node.transition(NodeState.OFF, 0.0)
    return sim


def test_bench_congested_64k_end_to_end(artifact_dir):
    """The ≥5x acceptance scenario: congested 64k nodes, vector
    backend, stepped vs batched — identical results, batched wall
    clock at least 5x better."""
    horizon = 12.0 * HOUR

    ref = _congested_64k()
    t_step, _ = _timed(lambda: ref.run(until=horizon))
    bat = _congested_64k()
    t_batch, _ = _timed(lambda: bat.run_batched(until=horizon))

    # Identical physics and decisions before any clock comparison.
    assert bat.sim.events_fired == ref.sim.events_fired
    assert bat.sim.now == ref.sim.now
    assert bat.meter.energy_joules == ref.meter.energy_joules
    assert bat.rm.boots_initiated == ref.rm.boots_initiated
    assert bat.rm.shutdowns_initiated == ref.rm.shutdowns_initiated
    for rj, bj in zip(ref.jobs, bat.jobs):
        assert rj.state is bj.state and rj.end_time == bj.end_time

    speedup = t_step / t_batch
    _update_bench_json("congested_64k", {
        "nodes": 65_536,
        "jobs": len(ref.jobs),
        "boots": ref.rm.boots_initiated,
        "shutdowns": ref.rm.shutdowns_initiated,
        "horizon_h": 12.0,
        "events": ref.sim.events_fired,
        "stepped_s": round(t_step, 3),
        "batched_s": round(t_batch, 3),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 5.0


def _wide_job_churn(bulk_ops: bool, nodes: int = 65_536):
    """Wide-job churn on 64k nodes: every start/teardown moves a
    2k-16k node cohort, and every scheduling pass ranks the full free
    pool by effective power.  The scalar reference transitions nodes
    one listener call at a time and rebuilds a NodePool per pass; the
    bulk engine moves each cohort in one SoA pass and selects rows
    straight off the availability mask."""
    machine = bench_machine(nodes)
    years = 8.0 * HOUR
    spec = WorkloadSpec(
        arrival_rate=60.0 / HOUR,
        duration=years,
        min_nodes=2048,
        max_nodes=16_384,
        mean_work=0.75 * HOUR,
    )
    jobs = WorkloadGenerator(
        spec, RngStreams(43).stream("wide")
    ).generate(count=300)
    return ClusterSimulation(
        machine,
        EasyBackfillScheduler(LowPowerAllocator()),
        jobs,
        seed=3,
        sample_interval=300.0,
        trace_enabled=False,
        bulk_ops=bulk_ops,
    )


def test_bench_wide_job_churn_64k(artifact_dir):
    """The bulk-transition acceptance scenario: identical results,
    batched cohort path at least 5x faster than the scalar spec."""
    horizon = 8.0 * HOUR

    ref = _wide_job_churn(bulk_ops=False)
    t_scalar, res_scalar = _timed(lambda: ref.run(until=horizon))
    bulk = _wide_job_churn(bulk_ops=True)
    t_bulk, res_bulk = _timed(lambda: bulk.run(until=horizon))

    # Decision identity before any clock comparison.
    assert result_fingerprint(res_bulk) == result_fingerprint(res_scalar)
    assert bulk.sim.events_fired == ref.sim.events_fired

    speedup = t_scalar / t_bulk
    _update_bench_json("wide_job_churn", {
        "nodes": 65_536,
        "jobs": len(ref.jobs),
        "horizon_h": 8.0,
        "events": ref.sim.events_fired,
        "fingerprint": result_fingerprint(res_bulk),
        "scalar_s": round(t_scalar, 3),
        "bulk_s": round(t_bulk, 3),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 5.0


def _deep_queue_backfill(bulk_ops: bool, nodes: int = 4096):
    """Deep-queue conservative backfill: a burst of work arriving much
    faster than the machine drains it, so every scheduling pass walks
    hundreds of pending reservations through the free-node profile.
    The profile walk (earliest_fit / reserve) and the per-pass context
    build dominate; the array profile plus the lazy context keep a
    pass proportional to the profile size, not the machine size."""
    machine = bench_machine(nodes)
    spec = WorkloadSpec(
        arrival_rate=900.0 / HOUR,
        duration=2.0 * HOUR,
        min_nodes=8,
        max_nodes=nodes // 4,
        mean_work=1.5 * HOUR,
    )
    jobs = WorkloadGenerator(
        spec, RngStreams(71).stream("deepq")
    ).generate(count=900)
    return ClusterSimulation(
        machine,
        ConservativeBackfillScheduler(),
        jobs,
        seed=17,
        sample_interval=600.0,
        trace_enabled=False,
        bulk_ops=bulk_ops,
    )


def test_bench_deep_queue_backfill(artifact_dir):
    """Deep-queue conservative backfill end to end: identical results
    between the scalar reference engine and the bulk engine, and the
    wall clock recorded for the baseline guard."""
    horizon = 2.0 * HOUR

    ref = _deep_queue_backfill(bulk_ops=False)
    t_scalar, res_scalar = _timed(lambda: ref.run(until=horizon))
    bulk = _deep_queue_backfill(bulk_ops=True)
    t_bulk, res_bulk = _timed(lambda: bulk.run(until=horizon))

    assert result_fingerprint(res_bulk) == result_fingerprint(res_scalar)
    assert bulk.sim.events_fired == ref.sim.events_fired

    speedup = t_scalar / t_bulk
    _update_bench_json("deep_queue_backfill", {
        "nodes": 4096,
        "jobs": len(ref.jobs),
        "horizon_h": 2.0,
        "events": ref.sim.events_fired,
        "fingerprint": result_fingerprint(res_bulk),
        "scalar_s": round(t_scalar, 3),
        "bulk_s": round(t_bulk, 3),
        "speedup": round(speedup, 2),
    })
    # The profile walk dominates both engines equally here; the bulk
    # engine must simply not regress vs the scalar reference.  The
    # wall-clock guard against the committed baseline is what catches
    # profile-kernel slowdowns.
    assert speedup >= 0.8


def test_bench_sparse_multiyear_swf_replay(artifact_dir):
    """Two simulated years of sparse SWF-replayed load on 1k nodes:
    the singleton fast path must not regress vs stepped dispatch."""
    years = 2.0 * 365.0 * 86400.0
    spec = WorkloadSpec(arrival_rate=3000.0 / years, duration=years,
                        min_nodes=1, max_nodes=256, mean_work=2.0 * HOUR)
    jobs = WorkloadGenerator(
        spec, RngStreams(23).stream("swf")
    ).generate(count=3000)
    # Stamp the generated jobs as a finished trace (SWF records
    # observed runtimes; unrun jobs carry -1 fields and are skipped by
    # the parser), then round-trip through the SWF format: the replay
    # consumes the same parsed stream a real-trace study would.
    for job in jobs:
        job.start(job.submit_time, list(range(job.nodes)))
        job.complete(job.submit_time + job.work_seconds)
    swf_text = roundtrip_string(jobs)

    def build():
        replayed = read_swf(io.StringIO(swf_text))
        assert len(replayed) == 3000
        return ClusterSimulation(
            bench_machine(1024), EasyBackfillScheduler(), replayed,
            seed=9, sample_interval=HOUR, scheduler_interval=900.0,
            trace_enabled=False,
        )

    ref = build()
    t_step, _ = _timed(lambda: ref.run(until=years))
    bat = build()
    t_batch, _ = _timed(lambda: bat.run_batched(until=years))

    assert bat.sim.events_fired == ref.sim.events_fired
    assert bat.meter.energy_joules == ref.meter.energy_joules
    ratio = t_step / t_batch
    _update_bench_json("sparse_swf_replay", {
        "nodes": 1024,
        "jobs": 3000,
        "years": 2.0,
        "events": ref.sim.events_fired,
        "stepped_s": round(t_step, 3),
        "batched_s": round(t_batch, 3),
        "speedup": round(ratio, 3),
    })
    # No-regression bar for the sparse regime.
    assert ratio >= 0.8


@pytest.mark.skipif(not os.environ.get("REPRO_BENCH_1M"),
                    reason="1M-node bench gated behind REPRO_BENCH_1M=1")
def test_bench_million_node_cluster(artifact_dir):
    """The ROADMAP target: a 1M-node synthetic cluster driven batched.

    Minutes of wall clock — run explicitly with REPRO_BENCH_1M=1.
    """
    nodes = 1_048_576
    machine = bench_machine(nodes, nodes_per_cabinet=512)
    jobs = bench_workload(seed=131, count=2000, nodes=nodes,
                          rate_per_hour=600.0, mean_work_hours=1.0)
    csim = ClusterSimulation(
        machine, FcfsScheduler(), jobs,
        policies=[IdleShutdownPolicy(idle_threshold=1800.0, min_spare=512,
                                     check_interval=300.0)],
        seed=7, sample_interval=600.0, trace_enabled=False,
    )
    horizon = 6.0 * HOUR
    t_batch, _ = _timed(lambda: csim.run_batched(until=horizon))
    _update_bench_json("million_node", {
        "nodes": nodes,
        "jobs": len(jobs),
        "horizon_h": 6.0,
        "events": csim.sim.events_fired,
        "batched_s": round(t_batch, 3),
        "events_per_s": round(csim.sim.events_fired / max(t_batch, 1e-9), 1),
    })
    assert csim.sim.events_fired > 0
