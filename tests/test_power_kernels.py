"""Kernel layer equivalence: numpy references vs mirror vs JIT twins.

Each kernel in :mod:`repro.power.kernels` ships three faces — the
``*_np`` reference, the ``@njit`` twin and a dispatcher.  These tests
pin the reference against the engine code it was extracted from
(``operating_points``, the profile's deque scan) and, where numba is
installed, the JIT twin bit-for-bit against the reference.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.cluster import Machine, MachineSpec
from repro.core.profile import FreeNodeProfile
from repro.power import kernels
from repro.power.model import NodePowerModel
from repro.power.vector import VectorPowerMirror


def random_mirror(seed: int, n: int = 96) -> VectorPowerMirror:
    """A mirror whose SoA columns cover every kernel branch: all six
    states, finite and +inf caps (including caps below idle power),
    heterogeneous variability, clamped frequencies, zero utilization."""
    rng = np.random.default_rng(seed)
    machine = Machine(MachineSpec(name="k", nodes=n, nodes_per_cabinet=8))
    mirror = VectorPowerMirror(machine, NodePowerModel())
    mirror.state_code[:] = rng.integers(0, 6, size=n).astype(np.int8)
    mirror.variability[:] = rng.uniform(0.9, 1.1, size=n)
    mirror.utilization[:] = np.where(
        rng.random(n) < 0.2, 0.0, rng.uniform(0.2, 1.0, size=n)
    )
    mirror.frequency[:] = rng.uniform(
        mirror.min_frequency, mirror.max_frequency
    )
    cap = np.full(n, np.inf)
    capped = rng.random(n) < 0.5
    cap[capped] = rng.uniform(
        0.8 * mirror.idle_power[capped],  # some caps below idle power
        1.1 * mirror.max_power[capped],
    )
    mirror.power_cap[:] = cap
    mirror.invalidate()
    return mirror


class TestNodeWatts:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_reference_matches_operating_points(self, seed):
        mirror = random_mirror(seed)
        model = mirror.model
        got = kernels.node_watts_np(
            mirror.state_code,
            mirror.idle_power,
            mirror.max_power,
            mirror.off_power,
            mirror.variability,
            mirror.frequency,
            mirror.min_frequency,
            mirror.max_frequency,
            mirror.power_cap,
            mirror.utilization,
            model.alpha,
            model.boot_power_fraction,
            model.shutdown_power_fraction,
        )
        ref = mirror.operating_points().watts
        # Bitwise: the kernel is the extracted watts column, not an
        # approximation of it.
        np.testing.assert_array_equal(got, ref)

    def test_machine_watts_uses_kernel(self, seed=5):
        mirror = random_mirror(seed)
        total = mirror.machine_watts()
        assert total == float(np.sum(mirror.operating_points().watts))


class TestEarliestFit:
    @staticmethod
    def random_profile(rng) -> FreeNodeProfile:
        profile = FreeNodeProfile.from_releases(
            0.0,
            int(rng.integers(0, 8)),
            [
                (float(t), int(c))
                for t, c in zip(
                    np.cumsum(rng.uniform(1.0, 50.0, size=40)),
                    rng.integers(0, 6, size=40),
                )
            ],
        )
        for _ in range(int(rng.integers(1, 8))):
            start = float(rng.uniform(0.0, profile.tail_time))
            end = start + float(rng.uniform(1.0, 400.0))
            profile.reserve(start, end, int(rng.integers(1, 4)))
        return profile

    @pytest.mark.parametrize("seed", range(8))
    def test_ring_buffer_matches_deque_scan(self, seed):
        rng = np.random.default_rng(seed)
        profile = self.random_profile(rng)
        assert not profile._monotone
        for _ in range(25):
            needed = int(rng.integers(1, 12))
            duration = float(rng.uniform(0.0, 600.0))
            ref = profile.earliest_fit(needed, duration)
            idx = kernels.earliest_fit_index_py(
                profile.times, profile.free, needed, duration
            )
            got = None if idx < 0 else profile.times[idx]
            assert got == ref, (needed, duration)

    def test_dispatcher_accepts_lists(self):
        times = [0.0, 10.0, 20.0, 30.0]
        free = [4, 1, 6, 6]
        assert kernels.earliest_fit_index(times, free, 5, 15.0) == 2
        assert kernels.earliest_fit_index(times, free, 9, 1.0) == -1


class TestApplyTransition:
    def test_scatters_in_place(self):
        state = np.zeros(8, dtype=np.int8)
        idle_since = np.full(8, np.nan)
        bound = np.zeros(8, dtype=np.int32)
        rows = np.array([1, 4, 6], dtype=np.intp)
        kernels.apply_transition_np(
            state, idle_since, bound, rows, kernels._BUSY, np.nan, 1
        )
        assert list(state) == [0, 5, 0, 0, 5, 0, 5, 0]
        assert list(bound) == [0, 1, 0, 0, 1, 0, 1, 0]
        assert np.isnan(idle_since).all()
        kernels.apply_transition_np(
            state, idle_since, bound, rows, kernels._IDLE, 42.0, 0
        )
        assert list(state[rows]) == [4, 4, 4]
        assert list(idle_since[rows]) == [42.0, 42.0, 42.0]
        assert bound.sum() == 0


class TestGating:
    def test_env_override_disables_numba(self):
        # In a fresh interpreter REPRO_NO_NUMBA must force the numpy
        # fallback whether or not numba is installed.
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.power import kernels; print(kernels.HAVE_NUMBA)",
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_NO_NUMBA": "1"},
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "False"


needs_numba = pytest.mark.skipif(
    not kernels.HAVE_NUMBA, reason="numba not installed"
)


@needs_numba
class TestNumbaBitIdentity:  # pragma: no cover - needs numba
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_node_watts(self, seed):
        mirror = random_mirror(seed)
        model = mirror.model
        cols = (
            mirror.state_code,
            mirror.idle_power,
            mirror.max_power,
            mirror.off_power,
            mirror.variability,
            mirror.frequency,
            mirror.min_frequency,
            mirror.max_frequency,
            mirror.power_cap,
            mirror.utilization,
            model.alpha,
            model.boot_power_fraction,
            model.shutdown_power_fraction,
        )
        nb = kernels._node_watts_nb(*cols)
        ref = kernels.node_watts_np(*cols)
        np.testing.assert_array_equal(nb, ref)

    @pytest.mark.parametrize("seed", range(4))
    def test_earliest_fit(self, seed):
        rng = np.random.default_rng(seed)
        profile = TestEarliestFit.random_profile(rng)
        times = np.asarray(profile.times, dtype=np.float64)
        free = np.asarray(profile.free, dtype=np.int64)
        for _ in range(25):
            needed = int(rng.integers(1, 12))
            duration = float(rng.uniform(0.0, 600.0))
            assert int(
                kernels._earliest_fit_nb(times, free, needed, duration)
            ) == kernels.earliest_fit_index_py(
                profile.times, profile.free, needed, duration
            )

    def test_apply_transition(self):
        rng = np.random.default_rng(3)
        state_a = rng.integers(0, 6, size=32).astype(np.int8)
        state_b = state_a.copy()
        idle_a = rng.uniform(0, 100, size=32)
        idle_b = idle_a.copy()
        bound_a = rng.integers(0, 2, size=32).astype(np.int32)
        bound_b = bound_a.copy()
        rows = np.flatnonzero(rng.random(32) < 0.4).astype(np.intp)
        kernels._apply_transition_nb(
            state_a, idle_a, bound_a, rows,
            np.int8(kernels._IDLE), 7.0, np.int32(0),
        )
        kernels.apply_transition_np(
            state_b, idle_b, bound_b, rows, kernels._IDLE, 7.0, 0
        )
        np.testing.assert_array_equal(state_a, state_b)
        np.testing.assert_array_equal(idle_a, idle_b)
        np.testing.assert_array_equal(bound_a, bound_b)
