"""Text rendering of experiment results.

Benches and examples print aligned-text tables; these helpers keep
that formatting in one place (and out of the science code).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def format_quantity(value: float, unit: str = "") -> str:
    """Human-scale formatting with SI-ish prefixes for big numbers."""
    if value != value:  # NaN
        return "n/a"
    abs_value = abs(value)
    if abs_value >= 1e9:
        text = f"{value / 1e9:.2f}G"
    elif abs_value >= 1e6:
        text = f"{value / 1e6:.2f}M"
    elif abs_value >= 1e3:
        text = f"{value / 1e3:.2f}k"
    elif abs_value >= 10:
        text = f"{value:.1f}"
    else:
        text = f"{value:.3f}"
    return f"{text}{unit}" if unit else text


def render_columns(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    min_width: int = 6,
) -> str:
    """Align *rows* under *headers* with auto column widths."""
    columns = len(headers)
    widths = [max(min_width, len(h)) for h in headers]
    for row in rows:
        for i in range(min(columns, len(row))):
            widths[i] = max(widths[i], len(str(row[i])))
    lines = []
    header_line = "  ".join(f"{h:<{w}}" for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        cells = [str(c) for c in row] + [""] * (columns - len(row))
        lines.append("  ".join(f"{c:<{w}}" for c, w in zip(cells, widths)))
    return "\n".join(lines)


#: Eight-level block characters for sparklines.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def render_sparkline(values, width: int = 60) -> str:
    """ASCII sparkline of a numeric series (resampled to *width*).

    The terminal-friendly way to show the "series the paper reports":
    power over time, queue depth, utilization.  Values are min-max
    normalized; a flat series renders mid-height.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        # Average-pool down to the target width.
        pooled = []
        step = len(values) / width
        for i in range(width):
            lo = int(i * step)
            hi = max(lo + 1, int((i + 1) * step))
            chunk = values[lo:hi]
            pooled.append(sum(chunk) / len(chunk))
        values = pooled
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[4] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def render_executor_summary(records) -> str:
    """Aligned table of executor :class:`RunRecord` outcomes.

    One row per (variant, replica): seed, wall-clock, attempts and
    whether the result came from the on-disk cache — the progress /
    provenance view a sweep prints next to its metric table.
    """
    rows = []
    for rec in records:
        rows.append([
            rec.variant,
            str(rec.replica),
            str(rec.seed),
            f"{rec.wall_seconds:.2f}s",
            str(rec.attempts),
            "cache" if rec.from_cache else "run",
        ])
    return render_columns(
        ["variant", "rep", "seed", "wall", "att", "source"], rows
    )


def render_dict_table(
    table: Dict[str, Dict[str, float]],
    metric_units: Optional[Dict[str, str]] = None,
    row_label: str = "variant",
) -> str:
    """Render a {row -> {column -> value}} mapping as aligned text."""
    if not table:
        return "(empty table)"
    metric_units = metric_units or {}
    columns = list(next(iter(table.values())).keys())
    headers = [row_label] + columns
    rows = []
    for name, metrics in table.items():
        rows.append(
            [name]
            + [
                format_quantity(metrics[c], metric_units.get(c, ""))
                for c in columns
            ]
        )
    return render_columns(headers, rows)
