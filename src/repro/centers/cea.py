"""CEA (Curie) scenario — Table I row 3.

Production: manual node shutdown to shift power budget between
systems.  Tech development: SLURM 'layout logic' — PDU/chiller
dependency awareness with maintenance avoidance (enabled here, since
it is the distinctive CEA capability this framework implements).
"""

from __future__ import annotations

from ..cluster.facility import MaintenanceWindow
from ..core.backfill import EasyBackfillScheduler
from ..core.simulation import ClusterSimulation
from ..policies.layout_aware import LayoutAwarePolicy
from ..policies.manual import AdminAction, ManualActionPolicy
from ..units import DAY, HOUR
from .base import CenterBuild, center_workload, standard_machine, standard_site


def build_simulation(
    seed: int = 0,
    duration: float = 2.0 * DAY,
    nodes: int = 128,
    maintenance_at: float = 8.0 * HOUR,
    maintenance_hours: float = 6.0,
    shifted_nodes: int = 16,
) -> CenterBuild:
    """Assemble the CEA scenario.

    A chiller maintenance window opens at *maintenance_at*; the layout
    policy keeps jobs off the dependent nodes ahead of time.  At the
    same time an admin script powers down *shifted_nodes* idle nodes,
    modelling the manual budget shift to a sibling system.
    """
    machine = standard_machine(
        "curie", nodes=nodes, idle_power=90.0, max_power=320.0, seed=seed,
    )
    site = standard_site(
        "cea", machine, region="Europe", with_facility_map=True, pdu_groups=4,
    )
    site.facility.add_maintenance(
        MaintenanceWindow(
            "chiller0", maintenance_at, maintenance_at + maintenance_hours * HOUR
        )
    )
    workload = center_workload("cea", machine, duration=duration, seed=seed)
    simulation = ClusterSimulation(
        machine,
        EasyBackfillScheduler(),
        workload,
        policies=[
            LayoutAwarePolicy(horizon=6.0 * HOUR),
            ManualActionPolicy(
                [AdminAction(maintenance_at, "shutdown", count=shifted_nodes)]
            ),
        ],
        site=site,
        seed=seed,
    )
    return CenterBuild(
        "cea",
        simulation,
        notes=[
            f"chiller0 maintenance at t={maintenance_at / HOUR:.0f}h "
            f"for {maintenance_hours:.0f}h (layout logic active)",
            f"manual shutdown of {shifted_nodes} nodes shifts budget",
        ],
    )
