"""Tests for energy tags, DVFS budgeting and dynamic power sharing."""

import pytest

from repro.cluster import Machine, MachineSpec
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.errors import PolicyError
from repro.policies import (
    DvfsBudgetPolicy,
    DynamicPowerSharingPolicy,
    EnergyTagPolicy,
    SchedulingGoal,
)
from repro.units import HOUR
from repro.workload import JobState
from repro.workload.phases import COMPUTE_BOUND, MEMORY_BOUND
from tests.conftest import make_job


def machine16():
    return Machine(MachineSpec(name="m", nodes=16,
                               idle_power=100.0, max_power=400.0))


class TestEnergyTags:
    def _run(self, jobs, goal):
        machine = machine16()
        policy = EnergyTagPolicy(goal=goal)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                policies=[policy])
        result = sim.run()
        return policy, result

    def test_first_run_characterizes(self):
        job = make_job(tag="app:4", work=100.0, walltime=500.0,
                       profile=COMPUTE_BOUND)
        policy, _ = self._run([job], SchedulingGoal.ENERGY_TO_SOLUTION)
        assert "app:4" in policy.characterized_tags
        # Characterization run executes at max frequency.
        assert job.assigned_frequency == pytest.approx(2.4e9)

    def test_second_run_uses_chosen_frequency(self):
        a = make_job(job_id="a", tag="t", work=100.0, walltime=500.0,
                     profile=MEMORY_BOUND)
        b = make_job(job_id="b", tag="t", work=100.0, walltime=500.0,
                     profile=MEMORY_BOUND, submit=200.0)
        policy, _ = self._run([a, b], SchedulingGoal.ENERGY_TO_SOLUTION)
        # Memory-bound: energy optimum is below max frequency.
        assert b.assigned_frequency < a.assigned_frequency

    def test_best_performance_goal_keeps_max(self):
        a = make_job(job_id="a", tag="t", work=100.0, walltime=500.0,
                     profile=MEMORY_BOUND)
        b = make_job(job_id="b", tag="t", work=100.0, walltime=500.0,
                     profile=MEMORY_BOUND, submit=200.0)
        policy, _ = self._run([a, b], SchedulingGoal.BEST_PERFORMANCE)
        assert b.assigned_frequency == pytest.approx(2.4e9)

    def test_energy_goal_saves_energy_on_memory_bound(self):
        def total_energy(goal):
            jobs = [
                make_job(job_id=f"j{i}", tag="t", work=600.0, walltime=3000.0,
                         profile=MEMORY_BOUND, submit=i * 700.0)
                for i in range(6)
            ]
            _, result = self._run(jobs, goal)
            assert all(j.state is JobState.COMPLETED for j in jobs)
            return sum(j.energy_joules for j in jobs)

        saving = total_energy(SchedulingGoal.ENERGY_TO_SOLUTION)
        base = total_energy(SchedulingGoal.BEST_PERFORMANCE)
        assert saving < base

    def test_energy_optimum_matches_analytic_form(self):
        policy = EnergyTagPolicy(goal=SchedulingGoal.ENERGY_TO_SOLUTION)
        machine = machine16()
        ClusterSimulation(machine, EasyBackfillScheduler(), [],
                          policies=[policy])
        # For s=1, alpha=2: E(r) ~ (idle + dyn·r^2)/r, minimized at
        # r* = sqrt(idle/dyn) = sqrt(100/300) ~ 0.577.
        best = policy.best_frequency(sensitivity=1.0, intensity=1.0)
        analytic = (100.0 / 300.0) ** 0.5 * 2.4e9
        ladder_step = (2.4e9 - 1.2e9) / 5
        assert abs(best - analytic) <= ladder_step

    def test_compute_bound_optimum_above_memory_bound(self):
        policy = EnergyTagPolicy(goal=SchedulingGoal.ENERGY_TO_SOLUTION)
        machine = machine16()
        ClusterSimulation(machine, EasyBackfillScheduler(), [],
                          policies=[policy])
        compute = policy.best_frequency(sensitivity=1.0, intensity=1.0)
        memory = policy.best_frequency(sensitivity=0.25, intensity=0.7)
        # Slowing memory-bound code is nearly free: its optimum sits at
        # the ladder floor, below the compute-bound optimum.
        assert memory < compute

    def test_edp_goal_between_extremes(self):
        policy = EnergyTagPolicy(goal=SchedulingGoal.ENERGY_DELAY_PRODUCT)
        machine = machine16()
        ClusterSimulation(machine, EasyBackfillScheduler(), [],
                          policies=[policy])
        edp = policy.best_frequency(sensitivity=0.3, intensity=0.7)
        policy.goal = SchedulingGoal.ENERGY_TO_SOLUTION
        energy = policy.best_frequency(sensitivity=0.3, intensity=0.7)
        assert edp >= energy

    def test_walltime_extended_for_slow_frequency(self):
        a = make_job(job_id="a", tag="t", work=100.0, walltime=150.0,
                     profile=MEMORY_BOUND)
        b = make_job(job_id="b", tag="t", work=100.0, walltime=150.0,
                     profile=MEMORY_BOUND, submit=200.0)
        policy, _ = self._run([a, b], SchedulingGoal.ENERGY_TO_SOLUTION)
        # Despite the tight walltime, b completes (limit extended).
        assert b.state is JobState.COMPLETED


class TestDvfsBudget:
    def test_starts_at_reduced_frequency_under_pressure(self):
        machine = machine16()
        budget = machine.idle_floor_power + 8 * 250.0
        jobs = [make_job(job_id=f"j{i}", nodes=8, work=500.0,
                         walltime=2000.0, profile=COMPUTE_BOUND)
                for i in range(2)]
        policy = DvfsBudgetPolicy(budget_watts=budget)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                policies=[policy],
                                cap_watts_for_metrics=budget)
        result = sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert policy.slowed_starts >= 1
        # Budget held at sampling resolution.
        assert result.metrics.peak_power_watts <= budget * 1.05

    def test_veto_when_even_fmin_does_not_fit(self):
        machine = machine16()
        budget = machine.idle_floor_power + 10.0
        job = make_job(nodes=8, work=100.0, walltime=1000.0,
                       profile=COMPUTE_BOUND)
        policy = DvfsBudgetPolicy(budget_watts=budget)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run(until=1 * HOUR)
        assert job.state is JobState.PENDING
        assert policy.vetoes > 0

    def test_full_frequency_when_budget_ample(self):
        machine = machine16()
        policy = DvfsBudgetPolicy(budget_watts=machine.peak_power * 2)
        job = make_job(nodes=4, work=100.0, walltime=1000.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run()
        assert job.assigned_frequency == pytest.approx(2.4e9)
        assert policy.slowed_starts == 0

    def test_min_speed_guard(self):
        machine = machine16()
        budget = machine.idle_floor_power + 8 * 120.0  # forces deep slowdown
        job = make_job(nodes=8, work=100.0, walltime=1000.0,
                       profile=COMPUTE_BOUND)
        policy = DvfsBudgetPolicy(budget_watts=budget, min_speed=0.9)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run(until=1 * HOUR)
        # The guard refuses the deep-slowdown start.
        assert job.state is JobState.PENDING


class TestDynamicPowerSharing:
    def test_budget_below_floor_rejected(self):
        machine = machine16()
        policy = DynamicPowerSharingPolicy(budget_watts=100.0)
        with pytest.raises(PolicyError):
            ClusterSimulation(machine, EasyBackfillScheduler(), [],
                              policies=[policy])

    def test_demand_proportional_distribution(self):
        machine = machine16()
        budget = machine.idle_floor_power + 8 * 150.0
        compute = make_job(job_id="c", nodes=4, work=2000.0, walltime=8000.0,
                           profile=COMPUTE_BOUND)
        memory = make_job(job_id="m", nodes=4, work=2000.0, walltime=8000.0,
                          profile=MEMORY_BOUND)
        policy = DynamicPowerSharingPolicy(budget_watts=budget,
                                           check_interval=300.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                                [compute, memory], policies=[policy])
        sim.run(until=1000.0)
        compute_caps = [machine.node(n).power_cap for n in compute.assigned_nodes]
        memory_caps = [machine.node(n).power_cap for n in memory.assigned_nodes]
        # The compute-bound job demands more and receives higher caps.
        assert min(compute_caps) > max(memory_caps)

    def test_total_caps_within_budget(self):
        machine = machine16()
        budget = machine.idle_floor_power + 8 * 150.0
        jobs = [make_job(job_id=f"j{i}", nodes=2, work=2000.0,
                         walltime=8000.0, profile=COMPUTE_BOUND)
                for i in range(4)]
        policy = DynamicPowerSharingPolicy(budget_watts=budget,
                                           check_interval=300.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                policies=[policy])
        sim.run(until=1000.0)
        total = sum(n.power_cap or n.effective_max_power
                    for n in machine.nodes if n.is_on)
        assert total <= budget * 1.01

    def test_sharing_beats_uniform_caps_on_mixed_load(self):
        # Ellsworth's headline: redistribute unused budget from
        # memory-bound nodes to compute-bound ones -> faster completion.
        budget_dynamic = 8 * 150.0

        def makespan(policies):
            machine = machine16()
            budget = machine.idle_floor_power + budget_dynamic
            jobs = [
                make_job(job_id=f"c{i}", nodes=2, work=1200.0,
                         walltime=30_000.0, profile=COMPUTE_BOUND)
                for i in range(4)
            ] + [
                make_job(job_id=f"m{i}", nodes=2, work=1200.0,
                         walltime=30_000.0, profile=MEMORY_BOUND)
                for i in range(4)
            ]
            if policies == "sharing":
                pols = [DynamicPowerSharingPolicy(budget_watts=budget,
                                                  check_interval=120.0)]
            else:
                # Uniform static split of the same budget.
                from repro.policies import StaticCappingPolicy

                per_node = budget / 16
                pols = [StaticCappingPolicy(cap_watts=per_node,
                                            capped_fraction=1.0)]
            sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                    policies=pols)
            result = sim.run()
            assert result.metrics.jobs_completed == 8
            return result.metrics.makespan

        assert makespan("sharing") < makespan("uniform")

    def test_redistribution_counter(self):
        machine = machine16()
        policy = DynamicPowerSharingPolicy(
            budget_watts=machine.peak_power, check_interval=100.0
        )
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [],
                                policies=[policy])
        sim.run(until=1000.0)
        assert policy.redistributions >= 10
