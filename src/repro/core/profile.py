"""Free-node profile: the scheduler's view of capacity over time.

Backfilling — EASY and conservative alike — reasons about one object:
the *free-node profile*, a step function mapping future time to the
number of simultaneously free nodes, built from running-job release
estimates and already-placed reservations.  The seed implementations
rebuilt and re-scanned that function from a raw delta dict for every
candidate start time, which made conservative backfill roughly
O(P·T³) at queue depth P with T profile breakpoints.

:class:`FreeNodeProfile` keeps the function materialized on flat
numpy arrays (amortized-doubling capacity, so breakpoint insertion is
one memmove instead of a list ``insert``):

* sorted breakpoint times plus the free-node count on each segment,
  so point queries are one ``searchsorted`` — O(log T);
* earliest-fit search over the reserved profile through the kernel
  layer (:mod:`repro.power.kernels`): a JIT sliding-window-minimum
  walk when numba is available, an early-exit skip scan otherwise —
  both exactly identical because counts are integers — collapsing
  to a single binary search over the cumulative release curve while
  the profile is still monotone (the EASY shadow case);
* incremental reservation insertion (subtract capacity over
  ``[start, end)``) that touches only the affected segments instead
  of re-deriving the whole profile.

Counts are integers throughout (nodes are indivisible), so profile
arithmetic is exact and decision-for-decision equivalent to the seed
delta-dict implementations (see ``repro.core.reference_backfill``) and
to the preserved list-based rewrite
(:class:`repro.core.reference_profile.ReferenceFreeNodeProfile`, the
oracle for the randomized equivalence sweep).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..errors import SchedulingError
from ..power import kernels

__all__ = ["FreeNodeProfile"]

#: Initial breakpoint capacity; doubles on demand.
_INITIAL_CAPACITY = 8

#: Release count above which ``from_releases`` builds the cumulative
#: curve vectorized (unique + scatter-add + cumsum).  Below it the
#: array round-trips cost more than the python fold saves.
_VECTOR_MIN_RELEASES = 16


class FreeNodeProfile:
    """Step function of free-node counts over ``[origin, +inf)``.

    Parameters
    ----------
    origin:
        Time of the first breakpoint (usually the scheduling instant
        ``ctx.now``).  Release events at or before *origin* fold into
        the base count — they raise the whole profile, mirroring how
        the seed scheduler's ``free_at`` summed every delta with
        ``time <= t``.  Pass ``float("-inf")`` to keep sub-``now``
        release times as explicit breakpoints (the EASY shadow walk
        needs them verbatim).
    free:
        Free-node count on the first segment.

    Invariants: ``times`` is strictly increasing with
    ``times[0] == origin``; ``free[i]`` is the count on
    ``[times[i], times[i+1])``, and the final segment extends to
    infinity.  ``times``/``free`` are live views over the first
    ``len(self)`` entries of the backing arrays — valid until the next
    mutation, like any numpy view.
    """

    __slots__ = ("_times", "_free", "_n", "_monotone")

    def __init__(self, origin: float, free: int) -> None:
        self._times = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._free = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._times[0] = origin
        self._free[0] = int(free)
        self._n = 1
        #: True while only releases (positive steps) were applied; the
        #: profile is then non-decreasing and earliest-fit is a binary
        #: search over the cumulative curve.
        self._monotone = True

    @property
    def times(self) -> np.ndarray:
        """Breakpoint times, ascending (float64 view)."""
        return self._times[: self._n]

    @property
    def free(self) -> np.ndarray:
        """Free count per segment (int64 view)."""
        return self._free[: self._n]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_releases(
        cls,
        origin: float,
        free_now: int,
        releases: Iterable[Tuple[float, int]],
    ) -> "FreeNodeProfile":
        """Build a profile from ``(time, nodes_released)`` events.

        Equal release times are consolidated into one breakpoint; the
        profile is the cumulative sum, so it starts monotone.
        """
        events = releases if isinstance(releases, list) else list(releases)
        profile = cls(origin, free_now)
        if not events:
            return profile
        if len(events) < _VECTOR_MIN_RELEASES:
            merged: dict = {}
            base = int(free_now)
            for time, count in events:
                if count < 0:
                    raise SchedulingError(
                        f"release of {count} nodes at t={time}: "
                        "counts must be >= 0"
                    )
                if time <= origin:
                    base += count
                else:
                    merged[time] = merged.get(time, 0) + count
            profile._free[0] = base
            running = base
            for time in sorted(merged):
                running += merged[time]
                profile._append(float(time), running)
            return profile
        t = np.array([e[0] for e in events], dtype=np.float64)
        c = np.array([e[1] for e in events], dtype=np.int64)
        if np.any(c < 0):
            for time, count in events:
                if count < 0:
                    raise SchedulingError(
                        f"release of {count} nodes at t={time}: "
                        "counts must be >= 0"
                    )
        fold = t <= origin
        base = int(free_now) + int(c[fold].sum())
        t, c = t[~fold], c[~fold]
        uniq, inverse = np.unique(t, return_inverse=True)
        steps = np.zeros(uniq.size, dtype=np.int64)
        np.add.at(steps, inverse, c)
        curve = base + np.cumsum(steps)
        n = 1 + uniq.size
        profile._reserve_capacity(n)
        profile._times[1:n] = uniq
        profile._free[0] = base
        profile._free[1:n] = curve
        profile._n = n
        return profile

    def add_release(self, time: float, count: int) -> None:
        """Add *count* nodes becoming free at *time* (and ever after)."""
        if count < 0:
            raise SchedulingError(
                f"release of {count} nodes at t={time}: counts must be >= 0"
            )
        if count == 0:
            return
        if time <= self._times[0]:
            self._free[: self._n] += count
            return
        idx = self._ensure_point(time)
        self._free[idx: self._n] += count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def tail_time(self) -> float:
        """Time of the last breakpoint (profile is constant after it)."""
        return float(self._times[self._n - 1])

    def free_at(self, time: float) -> int:
        """Free-node count at *time* (``time >= origin``).  O(log T)."""
        idx = int(self._times[: self._n].searchsorted(time, side="right")) - 1
        return int(self._free[idx]) if idx >= 0 else int(self._free[0])

    def earliest_at_least(self, needed: int, not_before: float) -> Optional[float]:
        """Earliest time the free count reaches *needed*, ignoring how
        long it stays there.  Only valid on a monotone (release-only)
        profile, where reaching the level means holding it forever —
        this is the EASY shadow-time query.  O(log T): a binary search
        over the cumulative release curve (its running minima *are* the
        curve itself while it is non-decreasing).

        Returns ``not_before`` when the level already holds on the
        first segment, the breakpoint time otherwise (which may be in
        the past when stale release estimates are present — callers
        compare against it, they do not schedule at it), and ``None``
        when the level is never reached.
        """
        if not self._monotone:
            raise SchedulingError(
                "earliest_at_least needs a monotone profile; use earliest_fit"
            )
        n = self._n
        lo = int(self._free[:n].searchsorted(needed, side="left"))
        if lo == n:
            return None
        return not_before if lo == 0 else float(self._times[lo])

    def earliest_fit(self, needed: int, duration: float) -> Optional[float]:
        """Earliest breakpoint from which *needed* nodes stay free for
        *duration*.  Returns ``None`` when no breakpoint qualifies
        (the caller may still check the constant tail segment).

        Monotone profiles short-circuit to :meth:`earliest_at_least`.
        The general (reserved) profile goes through the kernel layer
        (:mod:`repro.power.kernels`): a JIT sliding-window-minimum
        walk when numba is available, an early-exit skip scan
        otherwise; counts are integers, so both paths are exactly
        identical to the reference deque walk.
        """
        if self._monotone:
            return self.earliest_at_least(needed, float(self._times[0]))
        n = self._n
        idx = kernels.earliest_fit_index_arr(
            self._times[:n], self._free[:n], needed, duration
        )
        return None if idx < 0 else float(self._times[idx])

    # ------------------------------------------------------------------
    # Reservations
    # ------------------------------------------------------------------
    def reserve(self, start: float, end: float, count: int) -> None:
        """Subtract *count* nodes over ``[start, end)`` — one placed
        reservation (or an immediate start, with ``start == origin``).
        Touches only the segments inside the window.
        """
        if count <= 0:
            raise SchedulingError(
                f"reservation of {count} nodes: counts must be > 0"
            )
        if end <= start:
            return  # empty window: nothing to subtract
        if start < self._times[0]:
            raise SchedulingError(
                f"reservation at t={start} before profile origin "
                f"{self._times[0]}"
            )
        lo = self._ensure_point(start)
        hi = self._ensure_point(end)
        self._free[lo:hi] -= count
        self._monotone = False

    # ------------------------------------------------------------------
    def detach_arrays(
        self, extra: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, int, bool]:
        """Hand the backing arrays to a caller that takes ownership,
        grown to hold *extra* more breakpoints.

        The whole-pass backfill planner
        (:func:`repro.power.kernels.plan_conservative`) mutates the
        profile as flat arrays and caches them across scheduler
        passes; this accessor avoids a copy at the handoff.  Returns
        ``(times, free, n, monotone)``; the profile must not be used
        afterwards.
        """
        self._reserve_capacity(self._n + extra)
        return self._times, self._free, self._n, self._monotone

    # ------------------------------------------------------------------
    def _ensure_point(self, time: float) -> int:
        """Index of the breakpoint at *time*, inserting it (with the
        enclosing segment's count) when absent."""
        n = self._n
        times = self._times
        idx = int(times[:n].searchsorted(time, side="left"))
        if idx < n and times[idx] == time:
            return idx
        if n == times.shape[0]:
            self._reserve_capacity(n + 1)
        kernels.insert_point(self._times, self._free, n, idx, float(time))
        self._n = n + 1
        return idx

    def _append(self, time: float, free: int) -> None:
        """Append a breakpoint past the current tail (construction)."""
        n = self._n
        if n == self._times.shape[0]:
            self._reserve_capacity(n + 1)
        self._times[n] = time
        self._free[n] = free
        self._n = n + 1

    def _reserve_capacity(self, need: int) -> None:
        """Grow the backing arrays (doubling) to hold *need* entries."""
        capacity = self._times.shape[0]
        if capacity >= need:
            return
        while capacity < need:
            capacity *= 2
        times = np.empty(capacity, dtype=np.float64)
        free = np.empty(capacity, dtype=np.int64)
        times[: self._n] = self._times[: self._n]
        free[: self._n] = self._free[: self._n]
        self._times = times
        self._free = free

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        steps = ", ".join(
            f"{t:g}:{f}" for t, f in zip(self.times[:8], self.free[:8])
        )
        more = "..." if self._n > 8 else ""
        return f"FreeNodeProfile({steps}{more})"
