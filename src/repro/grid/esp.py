"""Electricity service provider: tariffs and price signals.

Bates et al. [6] analyzed the ESP-supercomputing-center relationship;
time-of-use pricing is the simplest coupling: energy is cheaper at
night, so energy-aware schedulers can shift deferrable load.  Prices
are piecewise-constant over the day with optional peak surcharges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import ConfigurationError
from ..units import DAY


@dataclass(frozen=True)
class ElectricityPriceSchedule:
    """Piecewise-constant daily tariff.

    ``bands`` is a sequence of (start_hour, end_hour, price_per_kwh)
    covering [0, 24) without gaps or overlaps.
    """

    bands: Tuple[Tuple[float, float, float], ...]

    def __post_init__(self) -> None:
        covered = 0.0
        last_end = 0.0
        for start, end, price in sorted(self.bands):
            if start != last_end:
                raise ConfigurationError(
                    f"tariff bands must tile [0,24): gap/overlap at hour {start}"
                )
            if price < 0:
                raise ConfigurationError("negative tariff price")
            covered += end - start
            last_end = end
        if abs(covered - 24.0) > 1e-9:
            raise ConfigurationError("tariff bands must cover 24 hours")

    @classmethod
    def flat(cls, price_per_kwh: float) -> "ElectricityPriceSchedule":
        """Single-band flat tariff."""
        return cls(((0.0, 24.0, price_per_kwh),))

    @classmethod
    def day_night(
        cls,
        day_price: float,
        night_price: float,
        day_start: float = 7.0,
        day_end: float = 21.0,
    ) -> "ElectricityPriceSchedule":
        """Two-band tariff with a daytime price window."""
        return cls(
            (
                (0.0, day_start, night_price),
                (day_start, day_end, day_price),
                (day_end, 24.0, night_price),
            )
        )

    def price_at(self, time: float) -> float:
        """Tariff (currency per kWh) at simulated *time*."""
        hour = (time % DAY) / 3600.0
        for start, end, price in self.bands:
            if start <= hour < end:
                return price
        return self.bands[-1][2]


class ElectricityServiceProvider:
    """An ESP: a tariff plus a contracted demand limit.

    ``demand_limit_watts`` models the contracted maximum demand; the
    penalty rate applies to energy drawn above it (a simplification of
    real demand charges, sufficient to give policies the right
    gradient).
    """

    def __init__(
        self,
        schedule: ElectricityPriceSchedule,
        demand_limit_watts: float = float("inf"),
        penalty_per_kwh: float = 0.0,
    ) -> None:
        self.schedule = schedule
        self.demand_limit_watts = demand_limit_watts
        self.penalty_per_kwh = penalty_per_kwh

    def cost_of(self, times: Sequence[float], watts: Sequence[float]) -> float:
        """Energy cost of a sampled power series (trapezoid-free, piecewise).

        Each interval [t_i, t_{i+1}) is billed at the price of its
        start and the power of its start sample; above-limit power
        incurs the penalty rate on the excess.
        """
        if len(times) != len(watts):
            raise ConfigurationError("times and watts must have equal length")
        total = 0.0
        for i in range(len(times) - 1):
            dt_hours = (times[i + 1] - times[i]) / 3600.0
            if dt_hours <= 0:
                continue
            kw = watts[i] / 1e3
            price = self.schedule.price_at(times[i])
            total += kw * dt_hours * price
            excess_kw = max(0.0, watts[i] - self.demand_limit_watts) / 1e3
            total += excess_kw * dt_hours * self.penalty_per_kwh
        return total
