"""Tests for fair-share scheduling and predictive backfilling."""

import copy

import pytest

from repro.cluster import Machine, MachineSpec
from repro.core import (
    ClusterSimulation,
    EasyBackfillScheduler,
    FairShareAccountingPolicy,
    FairShareScheduler,
    PredictiveEasyScheduler,
    RuntimeLearningPolicy,
)
from repro.prediction import UserRuntimePredictor
from repro.units import DAY
from tests.conftest import make_job


def machine8():
    return Machine(MachineSpec(name="m", nodes=8))


class TestFairShareScheduler:
    def test_decay(self):
        scheduler = FairShareScheduler(half_life=100.0)
        scheduler.record_usage("alice", 1000.0, now=0.0)
        assert scheduler.decayed_usage("alice", 0.0) == pytest.approx(1000.0)
        assert scheduler.decayed_usage("alice", 100.0) == pytest.approx(500.0)
        assert scheduler.decayed_usage("alice", 200.0) == pytest.approx(250.0)
        assert scheduler.decayed_usage("ghost", 0.0) == 0.0

    def test_light_user_jumps_queue(self):
        machine = machine8()
        scheduler = FairShareScheduler(half_life=7 * DAY)
        # heavy submitted earlier, but has massive accumulated usage.
        scheduler.record_usage("heavy", 1e6, now=0.0)
        blocker = make_job(job_id="blocker", nodes=8, work=600.0,
                           walltime=1200.0, user="other")
        heavy_job = make_job(job_id="h", nodes=8, work=100.0,
                             walltime=500.0, user="heavy", submit=1.0)
        light_job = make_job(job_id="l", nodes=8, work=100.0,
                             walltime=500.0, user="light", submit=2.0)
        sim = ClusterSimulation(
            machine, scheduler, [blocker, heavy_job, light_job],
            policies=[FairShareAccountingPolicy(scheduler)],
        )
        sim.run()
        # Light user's job ran before the heavy user's.
        assert light_job.start_time < heavy_job.start_time

    def test_accounting_policy_feeds_usage(self):
        machine = machine8()
        scheduler = FairShareScheduler()
        job = make_job(nodes=4, work=100.0, walltime=500.0, user="alice")
        sim = ClusterSimulation(
            machine, scheduler, [job],
            policies=[FairShareAccountingPolicy(scheduler)],
        )
        sim.run()
        assert scheduler.decayed_usage("alice", sim.sim.now) > 0.0

    def test_fairness_converges_usage(self):
        # Two users with identical demand end with comparable usage.
        machine = machine8()
        scheduler = FairShareScheduler(half_life=1 * DAY)
        jobs = []
        for i in range(12):
            jobs.append(make_job(job_id=f"j{i}", nodes=4, work=600.0,
                                 walltime=2000.0, submit=i * 10.0,
                                 user="u0" if i % 2 == 0 else "u1"))
        sim = ClusterSimulation(
            machine, scheduler, jobs,
            policies=[FairShareAccountingPolicy(scheduler)],
        )
        sim.run()
        now = sim.sim.now
        a = scheduler.decayed_usage("u0", now)
        b = scheduler.decayed_usage("u1", now)
        assert a == pytest.approx(b, rel=0.2)


class TestPredictiveEasy:
    def _workload(self):
        # A blocked head plus backfill candidates whose requests are
        # 10x over their true runtime: plain EASY sees no room, the
        # predictive variant (given a learned 0.1 ratio) does.
        blocker = make_job(job_id="blocker", nodes=6, work=950.0,
                           walltime=1000.0, user="bob")
        head = make_job(job_id="head", nodes=8, work=500.0,
                        walltime=1000.0, user="bob", submit=1.0)
        fillers = [
            make_job(job_id=f"fill{i}", nodes=2, work=100.0,
                     walltime=1050.0, user="alice", submit=2.0 + i)
            for i in range(2)
        ]
        return [blocker, head] + fillers

    def test_predictions_unlock_backfill(self):
        predictor = UserRuntimePredictor(ewma=1.0)
        # Teach it: alice uses ~10% of her requests.
        trained = make_job(job_id="t", walltime=1000.0, user="alice")
        trained.start(0.0, [0])
        trained.complete(100.0)
        predictor.observe(trained)

        def run(scheduler):
            machine = machine8()
            jobs = copy.deepcopy(self._workload())
            sim = ClusterSimulation(machine, scheduler, jobs)
            sim.run()
            return {j.job_id: j for j in jobs}

        plain = run(EasyBackfillScheduler())
        predictive = run(PredictiveEasyScheduler(predictor=predictor))
        # Plain EASY: fillers' 1050 s requests exceed the shadow
        # (blocker ends at 1000); they wait behind the head.
        assert plain["fill0"].start_time >= plain["head"].start_time
        # Predictive EASY: alice's ~105 s predicted runtimes fit before
        # the shadow; the fillers start immediately.
        assert predictive["fill0"].start_time < predictive["head"].start_time
        assert predictive["fill0"].start_time == pytest.approx(2.0 + 0.0, abs=5.0)

    def test_learning_policy_updates_predictor(self):
        predictor = UserRuntimePredictor()
        machine = machine8()
        job = make_job(work=100.0, walltime=1000.0, user="alice")
        sim = ClusterSimulation(
            machine, PredictiveEasyScheduler(predictor=predictor), [job],
            policies=[RuntimeLearningPolicy(predictor)],
        )
        sim.run()
        assert predictor.ratio_for("alice") == pytest.approx(0.1, abs=0.02)

    def test_hard_walltime_still_enforced(self):
        # Predictions do not change the kill limit.
        predictor = UserRuntimePredictor()
        machine = machine8()
        job = make_job(work=1000.0, walltime=100.0)
        sim = ClusterSimulation(
            machine, PredictiveEasyScheduler(predictor=predictor), [job],
        )
        sim.run()
        assert job.end_time == pytest.approx(100.0)

    def test_all_jobs_complete_under_predictive(self, small_workload):
        machine = Machine(MachineSpec(name="m", nodes=16))
        predictor = UserRuntimePredictor()
        sim = ClusterSimulation(
            machine, PredictiveEasyScheduler(predictor=predictor),
            copy.deepcopy(small_workload),
            policies=[RuntimeLearningPolicy(predictor)],
        )
        result = sim.run()
        assert result.metrics.jobs_completed == result.metrics.jobs_submitted
