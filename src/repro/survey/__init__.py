"""The survey itself: questionnaire, center data, and analysis.

This package encodes the paper's primary content as typed data:

* the full eight-question questionnaire with its rationale
  (Section IV) — :mod:`repro.survey.questionnaire`;
* the nine participating centers with geography (Section III,
  Figure 2) — :mod:`repro.survey.model`, :mod:`repro.survey.data`,
  :mod:`repro.survey.geography`;
* the three-part selection test and the 11 -> 9 funnel
  (Section III) — :mod:`repro.survey.selection`;
* the capability matrix of Tables I and II —
  :mod:`repro.survey.matrix`;
* the Figure-1 component-interaction graph —
  :mod:`repro.survey.components`;
* the cross-center analysis the paper announces as next steps —
  :mod:`repro.survey.analysis`.
"""

from .taxonomy import Technique, TECHNIQUE_DESCRIPTIONS
from .model import (
    Activity,
    CenterProfile,
    MaturityStage,
    SurveyResponse,
)
from .questionnaire import QUESTIONNAIRE, Question
from .data import (
    all_center_slugs,
    center_profile,
    survey_responses,
    PARTICIPATING_CENTERS,
    IDENTIFIED_NOT_PARTICIPATING,
)
from .matrix import CapabilityMatrix, build_capability_matrix
from .geography import Region, map_points, regional_distribution
from .components import build_component_graph, verify_component_graph
from .selection import SelectionCriteria, selection_funnel
from .analysis import SurveyAnalysis
from .report import render_survey_report

__all__ = [
    "Activity",
    "CapabilityMatrix",
    "CenterProfile",
    "IDENTIFIED_NOT_PARTICIPATING",
    "MaturityStage",
    "PARTICIPATING_CENTERS",
    "QUESTIONNAIRE",
    "Question",
    "Region",
    "SelectionCriteria",
    "SurveyAnalysis",
    "SurveyResponse",
    "TECHNIQUE_DESCRIPTIONS",
    "Technique",
    "all_center_slugs",
    "build_capability_matrix",
    "build_component_graph",
    "center_profile",
    "map_points",
    "regional_distribution",
    "render_survey_report",
    "selection_funnel",
    "survey_responses",
    "verify_component_graph",
]
