"""Node temperature evolution — the CINECA/Bologna predictive model.

Table II, CINECA research: "Scalable power monitoring, used to predict
per-job power use and used to generate predictive models for node
power and temperature evolution (with University of Bologna)."

A first-order RC thermal model per node:

    ``tau · dT/dt = (T_ambient + R_th·P) - T``

The steady state under power P is ``T_ambient + R_th·P``; *tau* is
the thermal time constant.  The closed-form step makes long simulated
intervals exact (no numerical integration error):

    ``T(t+dt) = T_ss + (T(t) - T_ss)·exp(-dt/tau)``
"""

from __future__ import annotations

import math

from ..errors import PredictionError
from ..units import check_positive


class NodeThermalModel:
    """First-order RC thermal model of one node.

    Parameters
    ----------
    r_thermal:
        Thermal resistance, Kelvin per watt (typical node: ~0.1 K/W).
    tau:
        Thermal time constant, seconds (typical: a few hundred).
    initial_temperature:
        Starting temperature, Celsius.
    t_max:
        Throttle/alarm threshold, Celsius.
    """

    def __init__(
        self,
        r_thermal: float = 0.1,
        tau: float = 300.0,
        initial_temperature: float = 30.0,
        t_max: float = 85.0,
    ) -> None:
        self.r_thermal = check_positive("r_thermal", r_thermal)
        self.tau = check_positive("tau", tau)
        self.temperature = float(initial_temperature)
        self.t_max = float(t_max)

    def steady_state(self, power_watts: float, ambient_c: float) -> float:
        """Equilibrium temperature under constant power and ambient."""
        return ambient_c + self.r_thermal * power_watts

    def step(self, dt: float, power_watts: float, ambient_c: float) -> float:
        """Advance the model *dt* seconds; returns the new temperature."""
        if dt < 0:
            raise PredictionError(f"dt must be >= 0, got {dt}")
        t_ss = self.steady_state(power_watts, ambient_c)
        self.temperature = t_ss + (self.temperature - t_ss) * math.exp(-dt / self.tau)
        return self.temperature

    def predict(self, horizon: float, power_watts: float, ambient_c: float) -> float:
        """Temperature *horizon* seconds ahead, without mutating state."""
        if horizon < 0:
            raise PredictionError(f"horizon must be >= 0, got {horizon}")
        t_ss = self.steady_state(power_watts, ambient_c)
        return t_ss + (self.temperature - t_ss) * math.exp(-horizon / self.tau)

    def time_to_threshold(self, power_watts: float, ambient_c: float) -> float:
        """Seconds until ``t_max`` under constant conditions.

        Returns ``inf`` if the steady state stays below the threshold,
        0 if already above it.
        """
        if self.temperature >= self.t_max:
            return 0.0
        t_ss = self.steady_state(power_watts, ambient_c)
        if t_ss <= self.t_max:
            return float("inf")
        # Solve t_max = t_ss + (T0 - t_ss)·exp(-t/tau).
        frac = (self.t_max - t_ss) / (self.temperature - t_ss)
        return -self.tau * math.log(frac)

    def would_throttle(self, power_watts: float, ambient_c: float) -> bool:
        """True if sustained operation would eventually cross t_max."""
        return self.steady_state(power_watts, ambient_c) > self.t_max
