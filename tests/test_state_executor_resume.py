"""Executor checkpointing and version-aware cache fingerprints."""

from __future__ import annotations

import pytest

from repro._version import __version__
from repro.analysis.executor import (
    ExperimentExecutor,
    VariantSpec,
    config_fingerprint,
)
from repro.simulator import derive_seed
from repro.state import STATE_SCHEMA_VERSION, save_state, snapshot

from .state_scenarios import build_rich, build_small, step_until

SPEC = VariantSpec(name="small", build=build_small, seed_kwarg="seed")
RICH = VariantSpec(name="rich", build=build_rich, seed_kwarg="seed")


class TestFingerprintVersioning:
    def test_fingerprint_includes_package_version(self, monkeypatch):
        base = config_fingerprint(SPEC, 1, None)
        monkeypatch.setattr(
            "repro.analysis.executor.__version__", __version__ + ".dev99"
        )
        assert config_fingerprint(SPEC, 1, None) != base

    def test_fingerprint_includes_state_schema(self, monkeypatch):
        base = config_fingerprint(SPEC, 1, None)
        monkeypatch.setattr(
            "repro.analysis.executor.STATE_SCHEMA_VERSION",
            STATE_SCHEMA_VERSION + 1,
        )
        assert config_fingerprint(SPEC, 1, None) != base

    def test_version_bump_invalidates_cache(self, tmp_path, monkeypatch):
        ex = ExperimentExecutor(cache_dir=tmp_path, base_seed=3)
        ex.run([SPEC])
        monkeypatch.setattr(
            "repro.analysis.executor.__version__", __version__ + ".dev99"
        )
        ex2 = ExperimentExecutor(cache_dir=tmp_path, base_seed=3)
        ex2.run([SPEC])
        # A different fingerprint means a different cache file: the
        # stale entry cannot be reused.
        assert ex2.last_cache_hits == 0
        assert ex2.last_executed == 1


class TestCheckpointValidation:
    def test_interval_requires_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            ExperimentExecutor(checkpoint_interval=100.0)

    def test_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            ExperimentExecutor(cache_dir=tmp_path, checkpoint_interval=0.0)


class TestCheckpointedExecution:
    def test_checkpointed_run_matches_plain(self, tmp_path):
        plain = ExperimentExecutor(cache_dir=tmp_path / "a", base_seed=3)
        r_plain = plain.run([SPEC])[0]
        ck = ExperimentExecutor(
            cache_dir=tmp_path / "b", base_seed=3, checkpoint_interval=200.0
        )
        r_ck = ck.run([SPEC])[0]
        assert r_ck.metrics == r_plain.metrics
        assert r_ck.fingerprint == r_plain.fingerprint
        assert r_ck.final_time == r_plain.final_time
        assert r_ck.events_fired == r_plain.events_fired

    def test_checkpoint_removed_after_success(self, tmp_path):
        ex = ExperimentExecutor(
            cache_dir=tmp_path, base_seed=3, checkpoint_interval=200.0
        )
        ex.run([SPEC])
        ckdir = tmp_path / "checkpoints"
        assert not ckdir.exists() or not list(ckdir.iterdir())

    def test_killed_sweep_resumes_identically(self, tmp_path):
        """A checkpoint left behind by a killed run is picked up and the
        resumed result matches the uninterrupted one exactly."""
        plain = ExperimentExecutor(cache_dir=tmp_path / "a", base_seed=3)
        r_plain = plain.run([RICH])[0]

        seed = derive_seed(3, "rich/replica:0")
        fp = config_fingerprint(RICH, seed, None)
        sim = step_until(build_rich(seed=seed), 900.0)
        ckpath = tmp_path / "b" / "checkpoints" / f"{fp}.ckpt"
        save_state(str(ckpath), snapshot(sim))

        ex = ExperimentExecutor(
            cache_dir=tmp_path / "b", base_seed=3, checkpoint_interval=300.0
        )
        r_resumed = ex.run([RICH])[0]
        assert r_resumed.metrics == r_plain.metrics
        assert r_resumed.fingerprint == r_plain.fingerprint
        assert r_resumed.events_fired == r_plain.events_fired
        assert not list(ckpath.parent.iterdir())

    def test_corrupt_checkpoint_falls_back_to_fresh(self, tmp_path):
        plain = ExperimentExecutor(cache_dir=tmp_path / "a", base_seed=3)
        r_plain = plain.run([SPEC])[0]

        seed = derive_seed(3, "small/replica:0")
        fp = config_fingerprint(SPEC, seed, None)
        ckpath = tmp_path / "b" / "checkpoints" / f"{fp}.ckpt"
        ckpath.parent.mkdir(parents=True)
        ckpath.write_bytes(b"not a checkpoint")

        ex = ExperimentExecutor(
            cache_dir=tmp_path / "b", base_seed=3, checkpoint_interval=300.0
        )
        assert ex.run([SPEC])[0].metrics == r_plain.metrics

    def test_foreign_checkpoint_falls_back_to_fresh(self, tmp_path):
        """A checkpoint from a different scenario under this task's
        path (config drift) is ignored, not restored."""
        plain = ExperimentExecutor(cache_dir=tmp_path / "a", base_seed=3)
        r_plain = plain.run([SPEC])[0]

        seed = derive_seed(3, "small/replica:0")
        fp = config_fingerprint(SPEC, seed, None)
        foreign = step_until(build_rich(), 900.0)
        ckpath = tmp_path / "b" / "checkpoints" / f"{fp}.ckpt"
        save_state(str(ckpath), snapshot(foreign))

        ex = ExperimentExecutor(
            cache_dir=tmp_path / "b", base_seed=3, checkpoint_interval=300.0
        )
        assert ex.run([SPEC])[0].metrics == r_plain.metrics

    def test_until_horizon_checkpointing(self, tmp_path):
        plain = ExperimentExecutor(
            cache_dir=tmp_path / "a", base_seed=3, until=1500.0
        )
        r_plain = plain.run([SPEC])[0]
        ck = ExperimentExecutor(
            cache_dir=tmp_path / "b", base_seed=3, until=1500.0,
            checkpoint_interval=400.0,
        )
        r_ck = ck.run([SPEC])[0]
        assert r_ck.metrics == r_plain.metrics
        assert r_ck.final_time == r_plain.final_time
