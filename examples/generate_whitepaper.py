#!/usr/bin/env python
"""Generate the survey analysis whitepaper the paper announces.

Section V: "The full analysis will be synthesised from the raw
material of the interview and whitepaper in an upcoming document."
This example produces that document's reproducible counterpart —
including a quantitative section per center that the original survey
could not have: every center's production policy stack *executed* on a
scaled simulation of its machine.

Run:  python examples/generate_whitepaper.py [output.md]
"""

import sys

from repro.centers import build_center_simulation, center_slugs
from repro.survey import render_survey_report
from repro.units import HOUR


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "survey_report.md"

    print("executing the nine center scenarios (scaled, 3 simulated "
          "hours each)...")
    center_metrics = {}
    for slug in center_slugs():
        build = build_center_simulation(slug, seed=9, duration=3 * HOUR,
                                        nodes=48)
        result = build.simulation.run()
        m = result.metrics
        center_metrics[slug] = {
            "jobs completed": float(m.jobs_completed),
            "utilization": round(m.utilization, 3),
            "mean wait [s]": round(m.mean_wait, 1),
            "average power [kW]": round(m.average_power_watts / 1e3, 2),
            "peak power [kW]": round(m.peak_power_watts / 1e3, 2),
            "energy [kWh]": round(m.total_energy_joules / 3.6e6, 2),
            "jobs killed": float(m.jobs_killed),
        }
        print(f"  {slug:10s} done "
              f"({m.jobs_completed:.0f} jobs, "
              f"{m.average_power_watts / 1e3:.1f} kW avg)")

    report = render_survey_report(center_metrics=center_metrics)
    with open(output, "w", encoding="utf-8") as fh:
        fh.write(report)
    print(f"\nwrote {len(report.splitlines())} lines to {output}")


if __name__ == "__main__":
    main()
