"""Cross-center analysis — the work the paper announces as next steps.

Section VII: the detailed analysis "will not only explore each site's
response ... but will also identify common themes in the responses as
well as identify any particularly noteworthy approaches".  This module
computes those artifacts from the typed survey data:

* technique adoption counts by maturity stage;
* common themes (techniques adopted by >= k centers);
* unique approaches (techniques only one center has);
* pairwise center similarity (Jaccard over technique sets) and a
  hierarchical clustering (scipy) of the centers;
* the research-vs-production gap Section VI highlights;
* vendor-engagement statistics (Q5's purpose).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.cluster import hierarchy
from scipy.spatial.distance import squareform

from .data import survey_responses
from .model import MaturityStage, SurveyResponse
from .taxonomy import Technique


@dataclass(frozen=True)
class AdoptionRecord:
    """Adoption of one technique across the nine centers."""

    technique: Technique
    research: Tuple[str, ...]
    tech_dev: Tuple[str, ...]
    production: Tuple[str, ...]

    @property
    def total_centers(self) -> int:
        """Distinct centers exhibiting the technique at any stage."""
        return len(set(self.research) | set(self.tech_dev) | set(self.production))


class SurveyAnalysis:
    """All derived statistics over the survey responses."""

    def __init__(self, responses: Sequence[SurveyResponse] = ()) -> None:
        self.responses: List[SurveyResponse] = (
            list(responses) if responses else survey_responses()
        )
        self.centers = [r.profile.slug for r in self.responses]

    # ------------------------------------------------------------------
    # Adoption
    # ------------------------------------------------------------------
    def adoption(self) -> List[AdoptionRecord]:
        """Per-technique adoption lists, sorted by total adoption."""
        records = []
        for technique in Technique:
            stages: Dict[MaturityStage, List[str]] = {s: [] for s in MaturityStage}
            for response in self.responses:
                for stage in MaturityStage:
                    if any(
                        technique in a.techniques
                        for a in response.by_stage(stage)
                    ):
                        stages[stage].append(response.profile.slug)
            records.append(
                AdoptionRecord(
                    technique,
                    tuple(stages[MaturityStage.RESEARCH]),
                    tuple(stages[MaturityStage.TECH_DEV]),
                    tuple(stages[MaturityStage.PRODUCTION]),
                )
            )
        records.sort(key=lambda r: (-r.total_centers, r.technique.name))
        return records

    def common_themes(self, min_centers: int = 3) -> List[AdoptionRecord]:
        """Techniques adopted by at least *min_centers* centers."""
        return [r for r in self.adoption() if r.total_centers >= min_centers]

    def unique_approaches(self) -> List[AdoptionRecord]:
        """Techniques exactly one center exhibits ("noteworthy")."""
        return [r for r in self.adoption() if r.total_centers == 1]

    def production_adoption_counts(self) -> Dict[Technique, int]:
        """Centers with each technique in production."""
        return {r.technique: len(r.production) for r in self.adoption()}

    # ------------------------------------------------------------------
    # Similarity and clustering
    # ------------------------------------------------------------------
    def similarity_matrix(self) -> Tuple[np.ndarray, List[str]]:
        """Pairwise Jaccard similarity of center technique sets."""
        sets = [r.techniques() for r in self.responses]
        n = len(sets)
        matrix = np.eye(n)
        for i in range(n):
            for j in range(i + 1, n):
                union = sets[i] | sets[j]
                inter = sets[i] & sets[j]
                sim = len(inter) / len(union) if union else 1.0
                matrix[i, j] = matrix[j, i] = sim
        return matrix, list(self.centers)

    def cluster_centers(self, num_clusters: int = 3) -> Dict[str, int]:
        """Hierarchical (average-linkage) clustering of the centers.

        Returns slug -> cluster label (1-based).
        """
        sim, centers = self.similarity_matrix()
        distance = 1.0 - sim
        np.fill_diagonal(distance, 0.0)
        condensed = squareform(distance, checks=False)
        linkage = hierarchy.linkage(condensed, method="average")
        labels = hierarchy.fcluster(linkage, t=num_clusters, criterion="maxclust")
        return dict(zip(centers, (int(l) for l in labels)))

    def most_similar_pair(self) -> Tuple[str, str, float]:
        """The two most similar centers and their Jaccard score."""
        sim, centers = self.similarity_matrix()
        n = len(centers)
        best = (centers[0], centers[1], -1.0)
        for i in range(n):
            for j in range(i + 1, n):
                if sim[i, j] > best[2]:
                    best = (centers[i], centers[j], float(sim[i, j]))
        return best

    # ------------------------------------------------------------------
    # Gap and vendor statistics
    # ------------------------------------------------------------------
    def research_production_gap(self) -> Dict[str, List[Technique]]:
        """Techniques researched somewhere but in production nowhere.

        The "gap between research and current practice" of Section VI.
        """
        adoption = self.adoption()
        gap = [
            r.technique
            for r in adoption
            if (r.research or r.tech_dev) and not r.production
        ]
        in_production = [r.technique for r in adoption if r.production]
        return {"research_only": gap, "reached_production": in_production}

    def vendor_engagement(self) -> Dict[str, List[str]]:
        """Partner -> centers naming them (Q5's vendor signal)."""
        engagement: Dict[str, List[str]] = {}
        for response in self.responses:
            for partner in response.partners():
                engagement.setdefault(partner, []).append(response.profile.slug)
        return dict(sorted(engagement.items(), key=lambda kv: (-len(kv[1]), kv[0])))

    def stage_counts(self) -> Dict[MaturityStage, int]:
        """Total activity count per maturity stage."""
        counts = {stage: 0 for stage in MaturityStage}
        for response in self.responses:
            for stage in MaturityStage:
                counts[stage] += len(response.by_stage(stage))
        return counts

    def all_have_production(self) -> bool:
        """Section V's claim: every site has some production deployment."""
        return all(
            response.by_stage(MaturityStage.PRODUCTION)
            for response in self.responses
        )
