"""Property-based tests for the extension subsystems: RAPL windows,
thermal model, fair-share decay, sparklines and the site budget
coordinator."""


import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import render_sparkline
from repro.core.fairshare import FairShareScheduler
from repro.power import PowerBudget, RaplDomain
from repro.prediction import NodeThermalModel

watt_series = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0),   # time gap
        st.floats(min_value=0.0, max_value=1000.0),  # watts
    ),
    min_size=1,
    max_size=50,
)


class TestRaplProperties:
    @given(watt_series, st.floats(min_value=1.0, max_value=500.0))
    def test_window_average_bounded_by_max_sample(self, series, window):
        domain = RaplDomain(limit_watts=100.0, window_seconds=window)
        t = 0.0
        max_watts = 0.0
        for gap, watts in series:
            t += gap
            domain.record(t, watts)
            max_watts = max(max_watts, watts)
        assert 0.0 <= domain.window_average(t) <= max_watts + 1e-9

    @given(watt_series)
    def test_allowance_non_negative(self, series):
        domain = RaplDomain(limit_watts=100.0, window_seconds=60.0)
        t = 0.0
        for gap, watts in series:
            t += gap
            domain.record(t, watts)
            assert domain.allowance(t) >= 0.0

    @given(st.floats(min_value=1.0, max_value=99.0),
           st.floats(min_value=10.0, max_value=100.0))
    def test_flat_draw_below_limit_always_compliant(self, watts, window):
        domain = RaplDomain(limit_watts=100.0, window_seconds=window)
        t = 0.0
        for _ in range(30):
            domain.record(t, watts)
            assert domain.compliant(t)
            t += window / 10.0


class TestThermalProperties:
    model_params = st.tuples(
        st.floats(min_value=0.01, max_value=0.5),    # r_thermal
        st.floats(min_value=10.0, max_value=1000.0),  # tau
        st.floats(min_value=0.0, max_value=500.0),    # power
        st.floats(min_value=-10.0, max_value=40.0),   # ambient
    )

    @given(model_params, st.floats(min_value=0.0, max_value=10_000.0))
    def test_temperature_between_start_and_steady(self, params, dt):
        r, tau, power, ambient = params
        model = NodeThermalModel(r_thermal=r, tau=tau,
                                 initial_temperature=ambient)
        steady = model.steady_state(power, ambient)
        start = model.temperature
        result = model.step(dt, power, ambient)
        lo, hi = min(start, steady), max(start, steady)
        assert lo - 1e-6 <= result <= hi + 1e-6

    @given(model_params)
    def test_long_run_converges_to_steady_state(self, params):
        r, tau, power, ambient = params
        model = NodeThermalModel(r_thermal=r, tau=tau,
                                 initial_temperature=ambient + 30.0)
        model.step(50.0 * tau, power, ambient)
        assert model.temperature == pytest.approx(
            model.steady_state(power, ambient), abs=1e-3
        )

    @given(model_params, st.floats(min_value=1.0, max_value=1000.0))
    def test_predict_equals_step_without_mutation(self, params, dt):
        r, tau, power, ambient = params
        model = NodeThermalModel(r_thermal=r, tau=tau,
                                 initial_temperature=25.0)
        predicted = model.predict(dt, power, ambient)
        stepped = model.step(dt, power, ambient)
        assert predicted == pytest.approx(stepped, rel=1e-12)


class TestFairShareProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1e5),
                              st.floats(min_value=0.0, max_value=1e6)),
                    max_size=30))
    def test_usage_never_negative_and_decays(self, charges):
        scheduler = FairShareScheduler(half_life=3600.0)
        t = 0.0
        for gap, node_seconds in charges:
            t += gap
            scheduler.record_usage("u", node_seconds, t)
            assert scheduler.decayed_usage("u", t) >= 0.0
        late = scheduler.decayed_usage("u", t + 10 * 3600.0)
        now = scheduler.decayed_usage("u", t)
        assert late <= now + 1e-6

    @given(st.floats(min_value=1.0, max_value=1e6),
           st.floats(min_value=60.0, max_value=1e6))
    def test_half_life_exact(self, amount, half_life):
        scheduler = FairShareScheduler(half_life=half_life)
        scheduler.record_usage("u", amount, now=0.0)
        assert scheduler.decayed_usage("u", half_life) == pytest.approx(
            amount / 2.0, rel=1e-9
        )


class TestSparklineProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), max_size=300),
           st.integers(min_value=1, max_value=120))
    def test_output_length_bounded(self, values, width):
        out = render_sparkline(values, width=width)
        assert len(out) == min(len(values), width)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=300))
    def test_only_valid_glyphs(self, values):
        out = render_sparkline(values)
        assert set(out) <= set(" ▁▂▃▄▅▆▇█")


class TestBudgetTreeProperties:
    @given(st.lists(st.floats(min_value=10.0, max_value=500.0),
                    min_size=2, max_size=6),
           st.lists(st.floats(min_value=0.0, max_value=1.0),
                    min_size=2, max_size=6))
    @settings(max_examples=50)
    def test_demand_proportional_resize_keeps_invariant(self, floors, demands):
        assume(len(floors) == len(demands))
        total = sum(floors) * 2.0
        root = PowerBudget("site", total)
        children = [
            root.subdivide(f"m{i}", total / len(floors))
            for i in range(len(floors))
        ]
        # Re-divide: floors + demand-proportional surplus (the
        # coordinator's arithmetic), shrink-first ordering.
        surplus = total - sum(floors)
        total_demand = sum(demands)
        targets = [
            floor + (surplus * d / total_demand if total_demand > 0
                     else surplus / len(floors))
            for floor, d in zip(floors, demands)
        ]
        order = sorted(range(len(children)),
                       key=lambda i: targets[i] - children[i].limit_watts)
        for i in order:
            children[i].resize(max(targets[i], 1.0))
        root.validate()
        assert sum(c.limit_watts for c in children) <= total + 1e-6
