"""Experiment ``exp-shutdown``: idle shutdown and windowed cap tracking.

Two surveyed behaviours:

* Mämmelä-style idle shutdown (Tokyo Tech production): saves energy at
  low utilization, neutral at saturation;
* Tokyo-Tech windowed cap tracking: boot/shutdown keeps the ~30-minute
  window average under the cap without killing jobs.

Ablation (DESIGN.md): enforcement-window sweep shows the compliance /
boot-churn trade-off.
"""

from __future__ import annotations

import copy

from repro.analysis.report import render_columns
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import DynamicProvisioningPolicy, IdleShutdownPolicy

from .conftest import bench_machine, bench_workload, write_artifact


def _run_idle(low_load: bool, with_policy: bool):
    machine = bench_machine(48, boot_time=300.0)
    rate = 6.0 if low_load else 60.0
    jobs = bench_workload(seed=19, count=60 if low_load else 150, nodes=48,
                          rate_per_hour=rate)
    policies = []
    if with_policy:
        policies.append(IdleShutdownPolicy(idle_threshold=900.0, min_spare=2,
                                           check_interval=300.0))
    sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                            copy.deepcopy(jobs), policies=policies, seed=1)
    return sim, sim.run()


def test_bench_idle_shutdown_saving(benchmark, artifact_dir):
    def sweep():
        out = {}
        for load in ("low", "high"):
            for policy in (False, True):
                sim, result = _run_idle(load == "low", policy)
                out[(load, policy)] = (result.metrics, sim.rm.boots_initiated)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for (load, policy), (metrics, boots) in results.items():
        rows.append([
            load, "on" if policy else "off",
            f"{metrics.total_energy_mwh:.3f}",
            f"{metrics.mean_wait:.0f}",
            f"{metrics.jobs_completed}", f"{boots}",
        ])
    write_artifact(
        "exp-shutdown-idle",
        "EXP-SHUTDOWN — idle-shutdown energy saving vs load\n\n"
        + render_columns(
            ["load", "shutdown", "energy[MWh]", "wait[s]", "done", "boots"],
            rows,
        ),
    )

    low_off = results[("low", False)][0]
    low_on = results[("low", True)][0]
    high_off = results[("high", False)][0]
    high_on = results[("high", True)][0]
    # At low utilization the saving is large (idle power dominates).
    assert low_on.total_energy_joules <= 0.7 * low_off.total_energy_joules
    # At saturation the saving shrinks dramatically (relative).
    low_saving = 1 - low_on.total_energy_joules / low_off.total_energy_joules
    high_saving = 1 - high_on.total_energy_joules / high_off.total_energy_joules
    assert high_saving < low_saving
    # Work still completes with the policy on.
    assert low_on.jobs_completed == low_off.jobs_completed


def test_bench_window_sweep(benchmark, artifact_dir):
    """Ablation: enforcement-window length for cap tracking."""
    windows = (600.0, 1800.0, 3600.0)

    def sweep():
        out = {}
        for window in windows:
            # The Tokyo Tech regime: high idle fraction (GPU boxes run
            # hot at idle), small virtualized jobs — the powered node
            # count is the dominant power lever, and the cap sits
            # between the all-on idle floor and machine peak.
            machine = bench_machine(24, boot_time=300.0,
                                    idle_power=200.0, max_power=280.0)
            cap = machine.peak_power * 0.75
            jobs = bench_workload(seed=23, count=80, nodes=8,
                                  rate_per_hour=80.0,
                                  mean_work_hours=0.25)
            policy = DynamicProvisioningPolicy(
                cap_watts=cap, window=window, summer_only=False,
                check_interval=120.0,
            )
            sim = ClusterSimulation(
                machine, EasyBackfillScheduler(), copy.deepcopy(jobs),
                policies=[policy], seed=1, cap_watts_for_metrics=cap,
            )
            result = sim.run()
            window_avg_peak = result.meter.window_average(window)
            out[window] = (result.metrics,
                           sim.rm.boots_initiated + sim.rm.shutdowns_initiated,
                           window_avg_peak, cap)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{w / 60:.0f}", f"{m.cap_exceedance_fraction:.1%}",
         f"{churn}", f"{m.jobs_killed}", f"{m.mean_wait:.0f}"]
        for w, (m, churn, _avg, _cap) in results.items()
    ]
    write_artifact(
        "exp-shutdown-window",
        "EXP-SHUTDOWN — enforcement window ablation (cap below the "
        "all-on idle floor)\n\n"
        + render_columns(
            ["window[min]", "instant>cap", "churn", "killed", "wait[s]"],
            rows,
        ),
    )
    # The cooperative guarantee holds at every window: no kills.
    assert all(m.jobs_killed == 0 for m, _c, _a, _x in results.values())
    # The tight cap actually engages the controller (nodes were shed
    # to make power room).
    assert any(c > 0 for _m, c, _a, _x in results.values())
    # Ablation finding: with instant-power boot gating, the controller
    # is stable across window lengths — no thrash at long windows
    # (before the fix, 30/60-minute windows produced tens of thousands
    # of boot/shutdown actions).
    assert all(c < 100 for _m, c, _a, _x in results.values())
    # The windowed metric itself is respected everywhere.
    assert all(a <= cap * 1.02 for _m, _c, a, cap in results.values())
