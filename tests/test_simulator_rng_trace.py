"""Tests for RNG streams and the trace recorder."""

import numpy as np
import pytest

from repro.simulator import RngStreams, TraceRecord, TraceRecorder


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(1).stream("x").random(10)
        b = RngStreams(1).stream("x").random(10)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        rng = RngStreams(1)
        a = rng.stream("a").random(10)
        b = rng.stream("b").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random(10)
        b = RngStreams(2).stream("x").random(10)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        rng = RngStreams(1)
        assert rng.stream("x") is rng.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        rng1 = RngStreams(1)
        s = rng1.stream("x")
        first = s.random()
        rng2 = RngStreams(1)
        rng2.stream("noise")  # extra stream created first
        assert rng2.stream("x").random() == pytest.approx(first)

    def test_fork_creates_independent_family(self):
        root = RngStreams(1)
        child = root.fork("replica0")
        assert isinstance(child, RngStreams)
        a = child.stream("x").random(5)
        b = root.stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_fork_deterministic(self):
        a = RngStreams(1).fork("r").stream("x").random(5)
        b = RngStreams(1).fork("r").stream("x").random(5)
        assert np.array_equal(a, b)


class TestTraceRecorder:
    def test_emit_and_len(self, trace):
        trace.emit(1.0, "job.start", job="j1")
        trace.emit(2.0, "job.end", job="j1")
        assert len(trace) == 2

    def test_records_filter_by_exact_category(self, trace):
        trace.emit(1.0, "job.start")
        trace.emit(2.0, "power.sample")
        assert len(trace.records("job.start")) == 1

    def test_records_filter_by_prefix(self, trace):
        trace.emit(1.0, "job.start")
        trace.emit(2.0, "job.end")
        trace.emit(3.0, "power.sample")
        assert len(trace.records("job")) == 2

    def test_prefix_does_not_match_partial_words(self, trace):
        trace.emit(1.0, "jobx.start")
        assert trace.records("job") == []

    def test_iter_between_half_open(self, trace):
        for t in (1.0, 2.0, 3.0):
            trace.emit(t, "x")
        got = list(trace.iter_between(1.0, 3.0))
        assert [r.time for r in got] == [1.0, 2.0]

    def test_subscriber_sees_records_live(self, trace):
        seen = []
        trace.subscribe(seen.append)
        trace.emit(1.0, "a", k=1)
        assert len(seen) == 1
        assert isinstance(seen[0], TraceRecord)
        assert seen[0].data == {"k": 1}

    def test_disabled_recorder_drops_records(self):
        trace = TraceRecorder(enabled=False)
        trace.emit(1.0, "a")
        assert len(trace) == 0

    def test_clear_keeps_subscribers(self, trace):
        seen = []
        trace.subscribe(seen.append)
        trace.emit(1.0, "a")
        trace.clear()
        assert len(trace) == 0
        trace.emit(2.0, "b")
        assert len(seen) == 2

    def test_count(self, trace):
        trace.emit(1.0, "a.b")
        trace.emit(1.0, "a.c")
        trace.emit(1.0, "d")
        assert trace.count("a") == 2
        assert trace.count() == 3

    def test_interleaved_categories_keep_emission_order(self, trace):
        # The bucket index must fold multiple matching buckets back
        # into global emission order, not concatenate bucket by bucket.
        sequence = ["job.start", "power.sample", "job.end", "job.start",
                    "rm.boot.start", "job.end", "power.cap", "job.kill"]
        for i, category in enumerate(sequence):
            trace.emit(float(i), category, idx=i)
        got = trace.records("job")
        assert [r.data["idx"] for r in got] == [0, 2, 3, 5, 7]
        assert [r.category for r in got] == [
            "job.start", "job.end", "job.start", "job.end", "job.kill"
        ]
        assert trace.count("job") == 5
        # Exact-category query hits a single bucket.
        assert [r.data["idx"] for r in trace.records("job.end")] == [2, 5]
        # Full dump unchanged.
        assert [r.data["idx"] for r in trace.records()] == list(range(8))

    def test_bucket_index_survives_clear(self, trace):
        trace.emit(1.0, "a.b")
        trace.clear()
        assert trace.records("a") == []
        assert trace.count("a") == 0
        trace.emit(2.0, "a.b")
        trace.emit(3.0, "a.c")
        assert [r.time for r in trace.records("a")] == [2.0, 3.0]
