"""Property-based tests: checkpoint round trips (repro.state).

Two layers:

* the RPST serializer round-trips arbitrary state trees losslessly and
  canonically;
* snapshot -> restore is a fixed point, and a restored simulation
  finishes identically to the uninterrupted one for randomized
  workloads, cut points and both power backends.
"""

from __future__ import annotations

import functools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, MachineSpec
from repro.core import ClusterSimulation, EasyBackfillScheduler, FcfsScheduler
from repro.state import (
    STATE_SCHEMA_VERSION,
    SimState,
    diff_states,
    from_bytes,
    restore,
    result_fingerprint,
    run_checkpointed,
    snapshot,
    state_fingerprint,
    to_bytes,
)
from repro.workload import Job

# ----------------------------------------------------------------------
# Serializer properties
# ----------------------------------------------------------------------
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False),  # NaN != NaN breaks tree equality, tested separately
    st.text(max_size=20),
)

arrays = st.one_of(
    st.lists(st.floats(allow_nan=False, allow_infinity=False, width=64),
             max_size=8).map(np.array),
    st.lists(st.integers(-(2**31), 2**31 - 1), max_size=8).map(
        lambda v: np.array(v, dtype=np.int64)
    ),
)

trees = st.recursive(
    st.one_of(scalars, arrays),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(
            st.text(max_size=8).filter(lambda s: not s.startswith("__")),
            children, max_size=4,
        ),
        st.dictionaries(st.integers(), children, max_size=3),
    ),
    max_leaves=20,
)


class TestSerializerProperties:
    @given(st.dictionaries(st.text(min_size=1, max_size=8).filter(
        lambda s: not s.startswith("__")), trees, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_lossless(self, data):
        state = SimState(STATE_SCHEMA_VERSION, "prop", data)
        back = from_bytes(to_bytes(state))
        assert diff_states(state, back) == []

    @given(st.dictionaries(st.text(min_size=1, max_size=8).filter(
        lambda s: not s.startswith("__")), trees, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_canonical(self, data):
        state = SimState(STATE_SCHEMA_VERSION, "prop", data)
        blob = to_bytes(state)
        assert to_bytes(from_bytes(blob)) == blob


# ----------------------------------------------------------------------
# Simulation round-trip properties
# ----------------------------------------------------------------------
_SCHEDULERS = {"fcfs": FcfsScheduler, "easy": EasyBackfillScheduler}


def build_random(seed, backend, scheduler, shapes):
    machine = Machine(MachineSpec(name="prop", nodes=8, nodes_per_cabinet=4))
    jobs = [
        Job(
            job_id=f"p{i}",
            nodes=nodes,
            work_seconds=work,
            walltime_request=4.0 * work + 100.0,
            submit_time=submit,
        )
        for i, (nodes, work, submit) in enumerate(shapes)
    ]
    return ClusterSimulation(
        machine, _SCHEDULERS[scheduler](), jobs, seed=seed,
        power_backend=backend,
    )


job_shapes = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=50.0, max_value=2000.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.0, max_value=3000.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1, max_size=8,
)


class TestSimulationRoundTripProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        backend=st.sampled_from(["vector", "scalar"]),
        scheduler=st.sampled_from(["fcfs", "easy"]),
        shapes=job_shapes,
        cut=st.floats(min_value=10.0, max_value=2500.0,
                      allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=15, deadline=None)
    def test_restore_is_fixed_point_and_finish_identical(
        self, seed, backend, scheduler, shapes, cut
    ):
        factory = functools.partial(
            build_random, seed, backend, scheduler, shapes
        )
        reference = result_fingerprint(factory().run())

        sim = factory()
        sim.prepare()
        while sim.sim.now < cut and not sim.all_jobs_terminal:
            if not sim.sim.step():
                break
        st_a = snapshot(sim)
        restored = restore(st_a, factory)
        assert state_fingerprint(snapshot(restored)) == state_fingerprint(st_a)
        assert result_fingerprint(run_checkpointed(restored)) == reference
        assert result_fingerprint(run_checkpointed(sim)) == reference

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        shapes=job_shapes,
        cuts=st.lists(
            st.floats(min_value=10.0, max_value=2000.0,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=3,
        ),
    )
    @settings(max_examples=8, deadline=None)
    def test_chained_checkpoints_finish_identical(self, seed, shapes, cuts):
        """Snapshot, restore, run to the next cut, snapshot again, ...:
        a chain of restores still lands on the reference result."""
        factory = functools.partial(build_random, seed, "vector", "fcfs", shapes)
        reference = result_fingerprint(factory().run())
        sim = factory()
        sim.prepare()
        for cut in sorted(cuts):
            while sim.sim.now < cut and not sim.all_jobs_terminal:
                if not sim.sim.step():
                    break
            sim = restore(snapshot(sim), factory)
        assert result_fingerprint(run_checkpointed(sim)) == reference
