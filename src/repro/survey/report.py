"""Render the full survey analysis as one Markdown document.

Section V: "The full analysis will be synthesised from the raw
material of the interview and whitepaper in an upcoming document."
This module generates that document's reproducible skeleton from the
typed survey data: methodology, selection funnel, per-center profiles
with their capability rows, the cross-center analysis, and (optionally)
live quantitative results from executing each center's scenario.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .analysis import SurveyAnalysis
from .data import survey_responses
from .geography import regional_distribution
from .matrix import build_capability_matrix
from .model import MaturityStage
from .questionnaire import QUESTIONNAIRE
from .selection import interview_timeline, selection_funnel


def _h(level: int, text: str) -> str:
    return f"{'#' * level} {text}"


def render_survey_report(
    center_metrics: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Build the Markdown report; returns the document text.

    Parameters
    ----------
    center_metrics:
        Optional ``slug -> {metric: value}`` from executed center
        scenarios, appended per center as the quantitative section the
        original survey could not include.
    """
    lines: List[str] = []
    out = lines.append

    out(_h(1, "Energy and Power Aware Job Scheduling and Resource "
            "Management — Survey Analysis Report"))
    out("")
    out("Reproducible synthesis of the EE HPC WG EPA JSRM survey "
        "(IPDPSW 2018), generated from the typed survey data in "
        "`repro.survey`.")
    out("")

    # ------------------------------------------------------------------
    out(_h(2, "Methodology"))
    out("")
    timeline = interview_timeline()
    funnel = selection_funnel()
    out(f"- Interviews: {timeline['start']} to {timeline['end']} "
        f"({timeline['duration_months']} months)")
    out(f"- Centers identified: {funnel.identified}; participating: "
        f"{funnel.participating} ({funnel.participation_rate:.0%})")
    out(f"- Written responses: {timeline['response_pages']}")
    out("")
    out(_h(3, "Questionnaire"))
    out("")
    for question in QUESTIONNAIRE:
        out(f"{question.number}. {question.text}")
        for letter, text in question.sub_items:
            out(f"   - ({letter}) {text}")
    out("")

    # ------------------------------------------------------------------
    out(_h(2, "Participating centers"))
    out("")
    dist = regional_distribution()
    out("Regional distribution: "
        + ", ".join(f"{region} {count}" for region, count in sorted(dist.items())))
    out("")
    matrix = build_capability_matrix()
    for response in survey_responses():
        profile = response.profile
        out(_h(3, f"{profile.name} ({profile.country})"))
        out("")
        out(f"- Flagship system: {profile.flagship_system}")
        out(f"- Institution type: {profile.institution_type}; "
            f"region: {profile.region}")
        partners = response.partners()
        if partners:
            out(f"- Named partners: {', '.join(partners)}")
        out("")
        for stage in MaturityStage:
            entries = matrix.cell(profile.slug, stage)
            out(f"**{stage.value}**")
            if entries:
                for entry in entries:
                    out(f"- {entry}")
            else:
                out("- (none reported)")
            out("")
        if center_metrics and profile.slug in center_metrics:
            out("**Executed scenario (this framework)**")
            for key, value in center_metrics[profile.slug].items():
                out(f"- {key}: {value:g}")
            out("")

    # ------------------------------------------------------------------
    out(_h(2, "Cross-center analysis"))
    out("")
    analysis = SurveyAnalysis()
    out(_h(3, "Common themes (three or more centers)"))
    out("")
    out("| Technique | Centers | Production | Development | Research |")
    out("|---|---|---|---|---|")
    for record in analysis.common_themes(min_centers=3):
        out(f"| {record.technique.value} | {record.total_centers} "
            f"| {len(record.production)} | {len(record.tech_dev)} "
            f"| {len(record.research)} |")
    out("")
    out(_h(3, "Noteworthy single-center approaches"))
    out("")
    for record in analysis.unique_approaches():
        where = (record.production or record.tech_dev or record.research)[0]
        out(f"- {record.technique.value} — {where}")
    out("")
    out(_h(3, "The research-to-production gap"))
    out("")
    gap = analysis.research_production_gap()
    out("Techniques active in research or development but deployed in "
        "production nowhere:")
    out("")
    for technique in gap["research_only"]:
        out(f"- {technique.value}")
    out("")
    out(_h(3, "Vendor engagement"))
    out("")
    out("| Partner | Centers |")
    out("|---|---|")
    for partner, centers in analysis.vendor_engagement().items():
        out(f"| {partner} | {', '.join(centers)} |")
    out("")
    out(_h(3, "Center similarity"))
    out("")
    a, b, score = analysis.most_similar_pair()
    out(f"Most similar pair (Jaccard over technique sets): **{a}** and "
        f"**{b}** ({score:.2f}).")
    clusters = analysis.cluster_centers(num_clusters=3)
    by_label: Dict[int, List[str]] = {}
    for slug, label in clusters.items():
        by_label.setdefault(label, []).append(slug)
    for label, members in sorted(by_label.items()):
        out(f"- Cluster {label}: {', '.join(sorted(members))}")
    out("")

    out(_h(2, "Conclusion"))
    out("")
    out("Every participating center operates some production EPA JSRM "
        "capability; vendor co-development is near-universal; and a "
        "measurable set of techniques remains research-only — the gap "
        "the survey calls out as the opportunity for the community.")
    out("")
    return "\n".join(lines)
