"""Evaluation metrics.

The quantities every scheduling/power paper in the survey's related
work reports, plus the compliance metrics specific to power capping:

* responsiveness — mean/median/p95 wait, mean bounded slowdown;
* throughput — completed jobs, jobs per day, utilization;
* power/energy — total energy, average and peak power, energy per
  completed job, energy-delay product;
* compliance — fraction of time above a cap, count of killed jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from ..power.meter import PowerMeter
from ..units import DAY, joules_to_mwh
from ..workload.job import Job, JobState


@dataclass
class MetricsReport:
    """Summary of one simulation run.  All times seconds, energy joules."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_killed: int = 0
    jobs_timed_out: int = 0
    jobs_unfinished: int = 0
    makespan: float = 0.0
    utilization: float = 0.0
    mean_wait: float = 0.0
    median_wait: float = 0.0
    p95_wait: float = 0.0
    mean_bounded_slowdown: float = 0.0
    throughput_per_day: float = 0.0
    total_energy_joules: float = 0.0
    average_power_watts: float = 0.0
    peak_power_watts: float = 0.0
    energy_per_job_joules: float = 0.0
    cap_exceedance_fraction: float = 0.0
    node_seconds_delivered: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def total_energy_mwh(self) -> float:
        """Total energy in megawatt-hours (for report rendering)."""
        return joules_to_mwh(self.total_energy_joules)

    def as_dict(self) -> Dict[str, float]:
        """Flat dict of all scalar metrics (extras merged in)."""
        out = {
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_killed": self.jobs_killed,
            "jobs_timed_out": self.jobs_timed_out,
            "jobs_unfinished": self.jobs_unfinished,
            "makespan": self.makespan,
            "utilization": self.utilization,
            "mean_wait": self.mean_wait,
            "median_wait": self.median_wait,
            "p95_wait": self.p95_wait,
            "mean_bounded_slowdown": self.mean_bounded_slowdown,
            "throughput_per_day": self.throughput_per_day,
            "total_energy_joules": self.total_energy_joules,
            "average_power_watts": self.average_power_watts,
            "peak_power_watts": self.peak_power_watts,
            "energy_per_job_joules": self.energy_per_job_joules,
            "cap_exceedance_fraction": self.cap_exceedance_fraction,
            "node_seconds_delivered": self.node_seconds_delivered,
        }
        out.update(self.extra)
        return out

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "MetricsReport":
        """Rebuild a report from :meth:`as_dict` output.

        Unknown keys land in :attr:`extra`, so reports survive a
        round-trip through flat JSON (the experiment executor's cache
        format) without losing information.
        """
        known = {f for f in cls.__dataclass_fields__ if f != "extra"}
        int_fields = {
            "jobs_submitted", "jobs_completed", "jobs_killed",
            "jobs_timed_out", "jobs_unfinished",
        }
        report = cls()
        for key, value in values.items():
            if key in known:
                setattr(
                    report, key,
                    int(value) if key in int_fields else float(value),
                )
            else:
                report.extra[key] = float(value)
        return report


def compute_metrics(
    jobs: Iterable[Job],
    total_nodes: int,
    span: Optional[float] = None,
    meter: Optional[PowerMeter] = None,
    cap_watts: Optional[float] = None,
) -> MetricsReport:
    """Compute a :class:`MetricsReport` over finished simulation state.

    Parameters
    ----------
    jobs:
        All jobs that were submitted.
    total_nodes:
        Machine size, for utilization.
    span:
        Observation span (defaults to last end time minus first submit).
    meter:
        Machine-level power meter, for energy/power metrics.
    cap_watts:
        If given, compute the fraction of samples above this cap.
    """
    jobs = list(jobs)
    report = MetricsReport(jobs_submitted=len(jobs))
    if not jobs:
        return report

    finished = [j for j in jobs if j.end_time is not None]
    report.jobs_completed = sum(1 for j in jobs if j.state is JobState.COMPLETED)
    report.jobs_killed = sum(1 for j in jobs if j.state is JobState.KILLED)
    report.jobs_timed_out = sum(1 for j in jobs if j.state is JobState.TIMEOUT)
    report.jobs_unfinished = sum(1 for j in jobs if not j.is_terminal)

    first_submit = min(j.submit_time for j in jobs)
    last_end = max((j.end_time for j in finished), default=first_submit)
    observed_span = span if span is not None else max(last_end - first_submit, 1e-9)
    report.makespan = last_end - first_submit

    waits = np.array([j.wait_time for j in jobs if j.wait_time is not None])
    if waits.size:
        report.mean_wait = float(waits.mean())
        report.median_wait = float(np.median(waits))
        report.p95_wait = float(np.percentile(waits, 95))

    slowdowns = np.array(
        [s for j in finished if (s := j.bounded_slowdown()) is not None]
    )
    if slowdowns.size:
        report.mean_bounded_slowdown = float(slowdowns.mean())

    node_seconds = sum(j.node_seconds or 0.0 for j in finished)
    report.node_seconds_delivered = node_seconds
    if total_nodes > 0 and observed_span > 0:
        report.utilization = node_seconds / (total_nodes * observed_span)
    report.throughput_per_day = report.jobs_completed / (observed_span / DAY)

    if meter is not None:
        report.total_energy_joules = meter.energy_joules
        report.average_power_watts = meter.average_watts()
        report.peak_power_watts = meter.peak_watts()
        if cap_watts is not None:
            report.cap_exceedance_fraction = meter.exceedance_fraction(cap_watts)
    else:
        report.total_energy_joules = sum(j.energy_joules for j in jobs)

    if report.jobs_completed:
        report.energy_per_job_joules = (
            report.total_energy_joules / report.jobs_completed
        )
    return report
