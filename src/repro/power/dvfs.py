"""Discrete DVFS frequency ladders (P-states).

Real processors expose a discrete set of frequency/voltage operating
points rather than a continuum.  CEA's research item ("investigating
with BULL power capping and DVFS") and the Etinski line of work
([18], [19]) operate on such ladders; this class provides the discrete
counterpart to the continuous model in :mod:`repro.power.model`.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError


class FrequencyLadder:
    """An ordered set of admissible operating frequencies (Hz).

    Frequencies are stored ascending.  Helpers map between target
    frequencies, caps and ladder steps.
    """

    def __init__(self, frequencies: Sequence[float]) -> None:
        freqs = sorted(float(f) for f in frequencies)
        if not freqs:
            raise ConfigurationError("frequency ladder cannot be empty")
        if freqs[0] <= 0:
            raise ConfigurationError("frequencies must be positive")
        if len(set(freqs)) != len(freqs):
            raise ConfigurationError("frequency ladder has duplicates")
        self.frequencies: List[float] = freqs

    @classmethod
    def linear(cls, f_min: float, f_max: float, steps: int) -> "FrequencyLadder":
        """Evenly spaced ladder of *steps* points from f_min to f_max."""
        if steps < 1:
            raise ConfigurationError("ladder needs >= 1 step")
        if steps == 1:
            return cls([f_max])
        if f_min >= f_max:
            raise ConfigurationError("f_min must be < f_max")
        span = f_max - f_min
        return cls([f_min + span * i / (steps - 1) for i in range(steps)])

    def __len__(self) -> int:
        return len(self.frequencies)

    @property
    def f_min(self) -> float:
        """Lowest admissible frequency."""
        return self.frequencies[0]

    @property
    def f_max(self) -> float:
        """Highest admissible frequency."""
        return self.frequencies[-1]

    def clamp(self, frequency: float) -> float:
        """Snap *frequency* to the nearest ladder point at or below it.

        Frequencies below the ladder floor snap to the floor (you can
        always run at least that slow), mirroring how governors round
        requested frequencies down to an admissible P-state.
        """
        best = self.frequencies[0]
        for f in self.frequencies:
            if f <= frequency:
                best = f
            else:
                break
        return best

    def step_down(self, frequency: float) -> float:
        """Next ladder point strictly below *frequency* (or the floor)."""
        candidates = [f for f in self.frequencies if f < frequency]
        return candidates[-1] if candidates else self.f_min

    def step_up(self, frequency: float) -> float:
        """Next ladder point strictly above *frequency* (or the ceiling)."""
        for f in self.frequencies:
            if f > frequency:
                return f
        return self.f_max
