"""Site-worker half of the federation: build, advance, report.

A site worker is stateless between epochs — all it holds is the code.
Each :class:`~repro.federation.protocol.EpochTask` carries everything
needed to materialize the site (config + ``RPST`` snapshot bytes),
advance it one epoch under the broker's directive, and hand back a
report plus the re-frozen state.  Because the state travels with the
task, the campaign can land any site on any worker each epoch —
migration between workers is the *normal* path, not a recovery one —
and a what-if fork is just the same task with ``keep_snapshot=False``
run against a copy of the bytes.

Everything here is module-level (no closures, no lambdas) so tasks
pickle cleanly through the process pool.
"""

from __future__ import annotations

import bisect
import functools
from typing import Optional

from ..centers import CenterBuild, build_center_simulation
from ..errors import ConfigurationError
from ..policies.site_budget import SiteBudgetPolicy
from ..state import from_bytes, restore, snapshot, state_fingerprint, to_bytes
from .protocol import EpochOutcome, EpochTask, SiteConfig, SiteReport

__all__ = ["build_site_simulation", "advance_site", "BACKLOG_LOOKAHEAD"]

#: how many queued jobs (in scheduling order) feed the demand signal —
#: mirrors the lookahead of the in-process BudgetCoordinator.
BACKLOG_LOOKAHEAD = 32


def build_site_simulation(config: SiteConfig) -> CenterBuild:
    """Deterministic factory: center scenario + steerable budget policy.

    Called identically on every epoch (and every worker) so the
    restored simulation's config digest matches the snapshot's.  The
    budget policy starts infinite (inert); directives arrive by
    assigning ``limit_watts`` after build/restore, never through the
    factory — the factory must not depend on per-epoch state.
    """
    build = build_center_simulation(
        config.slug,
        seed=config.seed,
        duration=config.horizon,
        **dict(config.builder_kwargs),
    )
    build.simulation.add_policy(
        SiteBudgetPolicy(check_interval=config.budget_check_interval)
    )
    return build


def _budget_policy(sim_obj) -> SiteBudgetPolicy:
    for policy in sim_obj.policies:
        if isinstance(policy, SiteBudgetPolicy):
            return policy
    raise ConfigurationError(
        "site simulation has no SiteBudgetPolicy; "
        "was it built by build_site_simulation?"
    )


def _epoch_series(sim_obj, start: float, end: float):
    """Meter samples covering [start, end], both boundaries included.

    The sample *at* ``start`` was recorded while closing the previous
    epoch and rides along in the snapshot, so consecutive reports
    share exactly one boundary point; billing the leading ``len - 1``
    half-open intervals of each report then tiles the campaign span
    with no gap and no double count.
    """
    times, watts = sim_obj.meter.series()
    lo = bisect.bisect_left(times, start)
    hi = bisect.bisect_right(times, end)
    return (
        tuple(float(t) for t in times[lo:hi]),
        tuple(float(w) for w in watts[lo:hi]),
    )


def _demand_watts(sim_obj) -> float:
    """Current draw plus the marginal power of the queued backlog."""
    node = sim_obj.machine.nodes[0]
    per_node = node.max_power - node.idle_power
    backlog = sum(
        job.nodes for job in sim_obj.queue.pending()[:BACKLOG_LOOKAHEAD]
    )
    return float(sim_obj.machine_power() + backlog * per_node)


def advance_site(task: EpochTask) -> EpochOutcome:
    """Advance one site through one coordination epoch.

    Epoch zero builds the site fresh; later epochs restore the RPST
    bytes onto a factory-built twin.  The closing snapshot is taken
    *before* ``finalize()`` on the final epoch, so the fingerprint a
    continuous run and a chunked run produce at the same instant are
    comparable — finalize only adds the metrics bundle to the report.
    """
    factory = functools.partial(build_site_simulation, task.config)
    if task.snapshot_blob is None:
        if task.epoch_start != 0.0:
            raise ConfigurationError(
                f"no snapshot for epoch starting at t={task.epoch_start}"
            )
        sim_obj = factory().simulation
    else:
        sim_obj = restore(from_bytes(task.snapshot_blob), factory)

    policy = _budget_policy(sim_obj)
    policy.limit_watts = task.directive.budget_watts

    sim_obj.prepare()
    sim_obj.sim.run(until=task.epoch_end)

    state = snapshot(sim_obj)
    fingerprint = state_fingerprint(state)
    blob: Optional[bytes] = (
        to_bytes(state) if task.keep_snapshot and not task.final else None
    )

    metrics = None
    if task.final:
        metrics = sim_obj.finalize().metrics.as_dict()

    times, watts = _epoch_series(sim_obj, task.epoch_start, task.epoch_end)
    machine = sim_obj.machine
    report = SiteReport(
        slug=task.config.slug,
        epoch=task.epoch,
        epoch_start=task.epoch_start,
        epoch_end=task.epoch_end,
        fingerprint=fingerprint,
        power_times=times,
        power_watts=watts,
        energy_joules=float(sim_obj.meter.energy_joules),
        demand_watts=_demand_watts(sim_obj),
        backlog_jobs=len(sim_obj.queue.pending()),
        backlog_nodes=int(sim_obj.queue.backlog_nodes()),
        running_jobs=len(sim_obj.running_jobs()),
        completed_jobs=int(sim_obj._terminal_count),
        vetoes=int(policy.vetoes),
        floor_watts=float(machine.idle_floor_power),
        ceiling_watts=float(machine.peak_power),
        metrics=metrics,
    )
    return EpochOutcome(report=report, snapshot_blob=blob)
