"""Fail CI when a measured performance advantage regresses.

Compares the freshly produced ``benchmarks/out/BENCH_*.json`` files
against the committed baselines in ``benchmarks/baseline/``.  Wall
clocks on shared CI runners are noisy, so the guard compares *speedup
ratios* (fast path vs reference on the same host), not absolute
seconds: for every speedup present in both files, the fresh value must
be at least ``(1 - TOLERANCE)`` of the committed one.  Speedups may sit
at a section's top level (``congested_64k.speedup``) or one level down
in per-size sub-sections (``full_resum.16384.speedup``).

``BENCH_state.json`` records no speedups; its noise-free guardable
metric is the checkpoint size (``snapshot_cost.<nodes>.checkpoint_bytes``
must not balloon past ``SIZE_TOLERANCE``) plus the ``resume.identical``
replay bit.

Speedup ratios are blind to a slowdown that hits both engines equally
(e.g. a profile-kernel regression shifts scalar *and* bulk walls, so
``deep_queue_backfill.speedup`` stays ~1.0).  The fast-path wall clocks
(``bulk_s`` / ``batched_s``) therefore also carry a *coarse* ceiling:
``WALL_CEILING``× the committed baseline, loose enough for runner
variance but tight enough to catch an algorithmic blow-up.

``BENCH_federation.json`` is guarded on its ``determinism.identical``
bit (the lockstep campaign must stay bit-reproducible across worker
counts), the per-variant campaign walls (coarse ``WALL_CEILING``) and
the broker's measured ``cost_reduction`` staying positive.

Usage::

    python .github/scripts/engine_bench_guard.py [fresh_dir] [baseline_dir] \
        [--files=BENCH_a.json,BENCH_b.json]

``--files`` restricts the guard to a subset — CI jobs that produce
only some of the bench files guard exactly those.
"""

from __future__ import annotations

import json
import pathlib
import sys

TOLERANCE = 0.20  # fail when a fast path regresses by more than 20%
SIZE_TOLERANCE = 0.25  # fail when a checkpoint grows by more than 25%
WALL_CEILING = 3.0  # fail when a fast-path wall blows past 3x baseline

#: Fast-path wall-clock keys guarded by the coarse ceiling.
_WALL_KEYS = ("bulk_s", "batched_s")

#: Absolute speedup floors, applied on top of the relative-to-baseline
#: check: section label -> minimum acceptable speedup regardless of
#: what the committed baseline says.  Protects sections whose baseline
#: could drift downward across re-baselines until the relative floor
#: guards nothing.
_SPEEDUP_FLOORS = {
    # Bulk engine must never fall behind the scalar reference beyond
    # runner noise on the deep-queue scenario.
    "deep_queue_backfill": 0.8,
}

#: Per-section wall-ceiling multipliers tighter than WALL_CEILING,
#: plus extra guarded keys: section -> {key: multiplier}.  The batched
#: backfill rewrite cut deep_queue_backfill walls ~7x; both engines
#: share the scheduler there, so the speedup ratio stays ~1.0 and is
#: blind to a scheduler regression — the walls (including scalar_s,
#: not normally a guarded key) are the real guard, held to a tighter
#: multiple than the coarse default.
_SECTION_WALL_CEILINGS = {
    "deep_queue_backfill": {"bulk_s": 2.0, "scalar_s": 2.0},
}

BENCH_FILES = (
    "BENCH_engine.json",
    "BENCH_power.json",
    "BENCH_state.json",
    "BENCH_federation.json",
)


def _iter_speedups(section_name: str, payload: dict):
    """Yield ``(label, speedup)`` for a section: top-level or per-size."""
    if "speedup" in payload:
        yield section_name, payload["speedup"]
        return
    for key, sub in sorted(payload.items()):
        if isinstance(sub, dict) and "speedup" in sub:
            yield f"{section_name}.{key}", sub["speedup"]


def check_speedups(name: str, fresh: dict, baseline: dict,
                   failures: list) -> int:
    checked = 0
    for section, base in sorted(baseline.items()):
        if section not in fresh:
            continue
        fresh_map = dict(_iter_speedups(section, fresh[section]))
        for label, base_speedup in _iter_speedups(section, base):
            got = fresh_map.get(label)
            if got is None:
                failures.append(f"{name} {label}: fresh run recorded no speedup")
                continue
            checked += 1
            floor = base_speedup * (1.0 - TOLERANCE)
            verdict = "ok" if got >= floor else "REGRESSED"
            print(
                f"{name} {label}: speedup {got:.2f}x vs baseline "
                f"{base_speedup:.2f}x (floor {floor:.2f}x) — {verdict}"
            )
            if got < floor:
                failures.append(
                    f"{name} {label}: {got:.2f}x < {floor:.2f}x "
                    f"(baseline {base_speedup:.2f}x - {TOLERANCE:.0%})"
                )
            abs_floor = _SPEEDUP_FLOORS.get(label)
            if abs_floor is not None:
                checked += 1
                verdict = "ok" if got >= abs_floor else "REGRESSED"
                print(
                    f"{name} {label}: speedup {got:.2f}x vs absolute "
                    f"floor {abs_floor:.2f}x — {verdict}"
                )
                if got < abs_floor:
                    failures.append(
                        f"{name} {label}: {got:.2f}x < absolute floor "
                        f"{abs_floor:.2f}x"
                    )
        overrides = _SECTION_WALL_CEILINGS.get(section, {})
        for key in sorted(set(_WALL_KEYS) | set(overrides)):
            base_wall = base.get(key)
            got_wall = fresh[section].get(key)
            if not isinstance(base_wall, (int, float)) or not isinstance(
                got_wall, (int, float)
            ):
                continue
            checked += 1
            mult = overrides.get(key, WALL_CEILING)
            ceiling = base_wall * mult
            verdict = "ok" if got_wall <= ceiling else "BLEW UP"
            print(
                f"{name} {section}.{key}: {got_wall:.2f}s vs baseline "
                f"{base_wall:.2f}s (ceiling {ceiling:.2f}s) — {verdict}"
            )
            if got_wall > ceiling:
                failures.append(
                    f"{name} {section}.{key}: {got_wall:.2f}s > "
                    f"{mult:.1f}x baseline {base_wall:.2f}s"
                )
    return checked


def check_state(name: str, fresh: dict, baseline: dict,
                failures: list) -> int:
    """State-file metrics: deterministic checkpoint size + replay bit."""
    checked = 0
    base_cost = baseline.get("snapshot_cost", {})
    fresh_cost = fresh.get("snapshot_cost", {})
    for nodes, base in sorted(base_cost.items()):
        base_bytes = base.get("checkpoint_bytes")
        got = fresh_cost.get(nodes, {}).get("checkpoint_bytes")
        if base_bytes is None or got is None:
            continue
        checked += 1
        ceiling = base_bytes * (1.0 + SIZE_TOLERANCE)
        verdict = "ok" if got <= ceiling else "BALLOONED"
        print(
            f"{name} snapshot_cost.{nodes}: {got} bytes vs baseline "
            f"{base_bytes} (ceiling {ceiling:.0f}) — {verdict}"
        )
        if got > ceiling:
            failures.append(
                f"{name} snapshot_cost.{nodes}: checkpoint grew to {got} "
                f"bytes (> baseline {base_bytes} + {SIZE_TOLERANCE:.0%})"
            )
    if "resume" in baseline and "resume" in fresh:
        checked += 1
        identical = fresh["resume"].get("identical")
        print(f"{name} resume.identical: {identical}")
        if identical is not True:
            failures.append(f"{name} resume: restored run not identical")
    return checked


def check_federation(name: str, fresh: dict, baseline: dict,
                     failures: list) -> int:
    """Federation metrics: determinism bit + campaign wall ceilings."""
    checked = 0
    if "determinism" in baseline and "determinism" in fresh:
        checked += 1
        identical = fresh["determinism"].get("identical")
        print(f"{name} determinism.identical: {identical}")
        if identical is not True:
            failures.append(
                f"{name} determinism: campaign repeat not bit-identical"
            )
    base_rows = {
        row["label"]: row
        for row in baseline.get("campaign", {}).get("variants", [])
    }
    fresh_rows = {
        row["label"]: row
        for row in fresh.get("campaign", {}).get("variants", [])
    }
    for label, base in sorted(base_rows.items()):
        got = fresh_rows.get(label)
        base_wall = base.get("wall_s")
        if got is None or not isinstance(base_wall, (int, float)):
            continue
        checked += 1
        ceiling = base_wall * WALL_CEILING
        wall = got.get("wall_s", float("inf"))
        verdict = "ok" if wall <= ceiling else "BLEW UP"
        print(
            f"{name} campaign.{label}: {wall:.1f}s vs baseline "
            f"{base_wall:.1f}s (ceiling {ceiling:.1f}s) — {verdict}"
        )
        if wall > ceiling:
            failures.append(
                f"{name} campaign.{label}: {wall:.1f}s > "
                f"{WALL_CEILING:.1f}x baseline {base_wall:.1f}s"
            )
    if "campaign" in baseline and "campaign" in fresh:
        checked += 1
        reduction = fresh["campaign"].get("cost_reduction", 0.0)
        print(f"{name} campaign.cost_reduction: {reduction:.3f}")
        if not reduction > 0.0:
            failures.append(
                f"{name} campaign: broker no longer reduces cost "
                f"(reduction={reduction:.3f})"
            )
    return checked


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--files=")]
    only = None
    for arg in sys.argv[1:]:
        if arg.startswith("--files="):
            only = set(arg.split("=", 1)[1].split(","))
    fresh_dir = pathlib.Path(args[0] if args else "benchmarks/out")
    base_dir = pathlib.Path(args[1] if len(args) > 1
                            else "benchmarks/baseline")

    failures: list = []
    checked = 0
    for filename in BENCH_FILES:
        if only is not None and filename not in only:
            continue
        base_path = base_dir / filename
        fresh_path = fresh_dir / filename
        if not base_path.exists():
            print(f"{filename}: no committed baseline — skipped")
            continue
        if not fresh_path.exists():
            failures.append(f"{filename}: baseline committed but no fresh run")
            continue
        fresh = json.loads(fresh_path.read_text())
        baseline = json.loads(base_path.read_text())
        if filename == "BENCH_state.json":
            checked += check_state(filename, fresh, baseline, failures)
        elif filename == "BENCH_federation.json":
            checked += check_federation(filename, fresh, baseline, failures)
        else:
            checked += check_speedups(filename, fresh, baseline, failures)

    if not checked:
        print("no overlapping guarded metrics — nothing to guard",
              file=sys.stderr)
        return 1
    if failures:
        print("\nbench regression:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"{checked} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
