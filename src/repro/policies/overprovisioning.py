"""Over-provisioning under a strict budget — Sarood et al. (SC'14, [38]).

An over-provisioned system has more nodes than its power budget can
drive at full power.  The scheduler must then choose an *operating
point* (how many nodes active, at what per-node cap) that maximizes
throughput: running more nodes at lower power wins whenever the
workload parallelizes, because dynamic power buys speed sublinearly
(``speed ~ f`` but ``power ~ f^alpha``).

Sarood et al. solve an ILP; for the homogeneous-machine case the
optimum is a one-dimensional scan over the active-node count, which
this policy performs exactly, using the node power model to price
each candidate.  The policy then (a) caps all nodes at the chosen
level and (b) restricts the scheduler to the chosen active set.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..cluster.node import Node
from ..core.epa import FunctionalCategory
from ..units import check_positive
from .base import Policy


class OverprovisioningPolicy(Policy):
    """Pick (active nodes, per-node cap) maximizing budgeted throughput.

    Parameters
    ----------
    budget_watts:
        The strict machine power budget.
    sensitivity:
        Assumed workload frequency sensitivity for the throughput
        model (1.0 = compute-bound worst case).
    recompute_interval:
        How often to re-run the scan (workload mix drifts), seconds.
    """

    name = "overprovisioning"

    def __init__(
        self,
        budget_watts: float,
        sensitivity: float = 0.9,
        recompute_interval: float = 3600.0,
    ) -> None:
        super().__init__()
        self.budget_watts = check_positive("budget_watts", budget_watts)
        self.sensitivity = float(sensitivity)
        self.control_interval = check_positive(
            "recompute_interval", recompute_interval
        )
        self.active_count: Optional[int] = None
        self.chosen_cap: Optional[float] = None

    # ------------------------------------------------------------------
    def solve_operating_point(self) -> Tuple[int, float, float]:
        """Scan n = 1..N for the throughput-optimal operating point.

        Returns ``(n_active, per_node_cap, throughput_score)`` where
        the score is ``n · speed(cap)``.  The budget pays for the
        active nodes only — the policy powers the rest off (their
        residual off-power is subtracted from the budget).
        """
        machine = self.simulation.machine
        model = self.simulation.power_model
        node = machine.nodes[0]
        n_total = len(machine.nodes)
        f_min_ratio = node.min_frequency / node.max_frequency
        p_min = model.power_at_ratio(node, f_min_ratio, 1.0)
        p_max = node.effective_max_power

        best = (1, p_max, 0.0)
        for n in range(1, n_total + 1):
            usable = self.budget_watts - node.off_power * (n_total - n)
            cap = usable / n
            if cap < p_min:
                break  # more nodes can't be powered even at f_min
            cap = min(cap, p_max)
            freq = model.frequency_for_cap(node, cap, 1.0)
            ratio = freq / node.max_frequency
            speed = model.speed_at_ratio(ratio, self.sensitivity)
            score = n * speed
            if score > best[2]:
                best = (n, cap, score)
        return best

    def on_attach(self) -> None:
        self._apply()

    def on_tick(self, now: float) -> None:
        self._apply()

    def _active_ids(self) -> set:
        machine = self.simulation.machine
        return {n.node_id for n in machine.nodes[: self.active_count or 0]}

    def _apply(self) -> None:
        n, cap, _score = self.solve_operating_point()
        self.active_count = n
        self.chosen_cap = cap
        machine = self.simulation.machine
        rm = self.simulation.rm
        active = self._active_ids()
        active_nodes = [nd for nd in machine.nodes if nd.node_id in active]
        floor = max(nd.cap_floor for nd in active_nodes)
        rm.set_power_cap(active_nodes, max(cap, floor))
        # The budget covers only the active partition: power the rest
        # off, and bring active nodes back when the solution grows.
        parked = [nd for nd in machine.nodes if nd.node_id not in active]
        rm.shutdown_nodes(parked)
        rm.boot_nodes(active_nodes)

    # ------------------------------------------------------------------
    def filter_nodes(self, nodes: List[Node], now: float) -> List[Node]:
        """Restrict the allocatable pool to the active partition."""
        if self.active_count is None:
            return nodes
        active = self._active_ids()
        return [n for n in nodes if n.node_id in active]

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "overprovision-optimizer",
                FunctionalCategory.POWER_CONTROL,
                f"throughput-optimal (n, cap) under "
                f"{self.budget_watts / 1e3:.0f} kW budget",
            )
        ]
