"""The discrete-event simulator core.

A thin, fast event loop: a binary heap of :class:`Event` objects, a
monotonically non-decreasing clock, and helpers for one-shot, delayed
and periodic callbacks.  Determinism guarantees:

* events at the same ``(time, priority)`` fire in scheduling order
  (FIFO via a monotone sequence counter);
* cancellation is O(1) (tombstoning) and never perturbs ordering;
* the clock never moves backwards — scheduling strictly in the past
  raises :class:`~repro.errors.EventOrderError`.

Two execution paths share those guarantees:

* :meth:`Simulator.step` / :meth:`Simulator.run` — the executable
  spec: one heap pop per event;
* :meth:`Simulator.run_batched` — drains the whole same-timestamp
  cohort in one pass, grouping events into priority-tier buckets.
  Events scheduled *at the current instant* from inside the batch
  (the schedule-pass-at-now pattern) go straight into the buckets and
  never touch the heap.  The dispatch order — ``(time, priority,
  seq)`` with tier preemption when a batch event schedules a
  lower-tier same-instant event — is event-for-event identical to
  ``step()``-by-``step()`` execution, pinned by the property suite
  and the ``repro.state`` first-divergence harness.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, Dict, List, Optional

from ..errors import EventOrderError, SimulationError
from .events import Event, EventPriority


class EventHandle:
    """Opaque, cancellable reference to a scheduled event."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: "Optional[Simulator]" = None) -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled/fired)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent.

        A first effective cancel turns the heap entry into a tombstone:
        the owning simulator's live count drops and its tombstone count
        grows (possibly triggering heap compaction).  Cancelling an
        already-fired or already-cancelled event changes no counters.
        """
        event = self._event
        if event.cancelled or event.done:
            event.cancelled = True
            return
        event.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1
            if event.in_bucket:
                # The event sits in a run_batched() same-instant bucket,
                # not the heap: the dispatcher skips it in place, so it
                # must not enter the heap tombstone accounting.
                return
            sim._tombstones += 1
            sim._maybe_compact()


class PeriodicChain:
    """State of one ``every()`` chain.

    Each firing schedules the next via the bound ``_tick`` method, so
    the pending heap entry of a periodic chain is introspectable (the
    state subsystem recognizes ``event.action.__self__`` as a
    :class:`PeriodicChain` and serializes the chain parameters instead
    of an opaque closure).

    Firing times are *phase-locked*: the chain tracks the grid origin
    ``epoch`` (the first firing time) and the index of the pending
    tick, and computes every firing as ``epoch + index * interval``.
    The naive ``now + interval`` recurrence accumulates one rounding
    error per tick and drifts off the grid over multi-year runs (about
    1e-8 s after 100k ticks at interval 0.1); the closed form stays
    within one ulp of the exact grid forever.
    """

    __slots__ = ("sim", "interval", "action", "args", "priority", "name",
                 "until", "cancelled", "handle", "epoch", "index")

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        action: Callable[..., Any],
        args: tuple,
        priority: int,
        name: str,
        until: Optional[float],
        epoch: float = 0.0,
        index: int = 0,
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.action = action
        self.args = args
        self.priority = priority
        self.name = name
        self.until = until
        self.cancelled = False
        self.handle: Optional[EventHandle] = None
        #: Grid origin: the time of tick 0.
        self.epoch = epoch
        #: Index of the pending (not yet fired) tick on the grid.
        self.index = index

    def _tick(self) -> None:
        if self.cancelled:
            return
        self.action(*self.args)
        if self.cancelled:
            return  # the action cancelled its own chain
        next_index = self.index + 1
        next_time = self.epoch + next_index * self.interval
        if self.until is not None and next_time > self.until:
            # Exhausted: mark the whole chain dead so handles over it
            # report inactive (the final tick's event has done=True but
            # cancelled=False, which alone would read as still-pending).
            self.cancelled = True
            return
        self.index = next_index
        self.handle = self.sim.at(
            next_time, self._tick, priority=self.priority, name=self.name
        )


class _ChainHandle(EventHandle):
    """Handle over a whole periodic chain (cancels all future firings)."""

    __slots__ = ("_chain",)

    def __init__(self, chain: PeriodicChain) -> None:
        self._chain = chain

    @property
    def time(self) -> float:
        return self._chain.handle.time

    @property
    def active(self) -> bool:
        return not self._chain.cancelled and self._chain.handle.active

    def cancel(self) -> None:
        self._chain.cancelled = True
        self._chain.handle.cancel()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.  Defaults to
        zero; center scenarios that model calendar effects (seasonal
        capping, diurnal load) pick an epoch offset instead.
    """

    #: Tombstone compaction threshold: compact once more than half the
    #: heap is cancelled events (and the absolute count is non-trivial).
    _COMPACT_MIN_TOMBSTONES = 16

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._events_fired = 0
        # Live (scheduled, not yet fired or cancelled) and tombstoned
        # (cancelled but still in the heap) event counts.  `pending`
        # used to scan the whole heap per call — O(H) with H inflated
        # by tombstones; cap-heavy runs cancel and reschedule a
        # completion event per speed change, so both the scan and the
        # heap itself grew without bound.
        self._live = 0
        self._tombstones = 0
        # Same-instant dispatch buckets for run_batched(): priority ->
        # FIFO list of events at the current instant, plus the sorted
        # active priorities and per-bucket consumed positions.  Only
        # populated while run_batched() is dispatching one cohort; any
        # early exit flushes survivors back into the heap.
        self._in_batch = False
        self._buckets: Dict[int, List[Event]] = {}
        self._bucket_order: List[int] = []
        self._bucket_pos: Dict[int, int] = {}
        #: Optional hook invoked as ``observer(event)`` after each event
        #: fires (post-state).  Used by repro.state.replay to record
        #: per-event fingerprint streams without perturbing ordering.
        self.observer: Optional[Callable[[Event], None]] = None
        #: Optional zero-argument hook invoked by :meth:`run_batched`
        #: once per drained cohort, after every event at that timestamp
        #: has fired.  Observability sinks use it to materialize their
        #: per-event deferred buffers in one batch per cohort instead
        #: of one call per event; it must not schedule events.
        self.cohort_hook: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for throughput benches)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live events awaiting execution.  O(1).

        Cancelled events (tombstones) still sitting in the heap are
        not counted — they will be skipped, never fired.
        """
        return self._live

    @property
    def heap_size(self) -> int:
        """Heap entries including tombstones (observability for the
        compaction invariant: bounded by ~2x the live count)."""
        return len(self._heap)

    def _maybe_compact(self) -> None:
        """Drop tombstones once they outnumber live heap entries.

        Rebuilding via ``heapify`` is O(H) and safe for determinism:
        events have a strict total order (time, priority, seq), so the
        pop sequence of a heap depends only on its multiset of events,
        not on their internal arrangement.  The compaction mutates the
        heap list *in place* — ``run_batched`` holds a reference to it
        across fired actions, and rebinding would silently orphan that
        alias (events scheduled after a mid-batch compaction would land
        in a heap the dispatch loop never reads).
        """
        if (
            self._tombstones > self._COMPACT_MIN_TOMBSTONES
            and 2 * self._tombstones > len(self._heap)
        ):
            heap = self._heap
            heap[:] = [e for e in heap if not e.cancelled]
            heapq.heapify(heap)
            self._tombstones = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
        name: str = "",
    ) -> EventHandle:
        """Schedule *action(*args)* at absolute simulated *time*."""
        if time < self._now:
            raise EventOrderError(
                f"cannot schedule {name or action!r} at t={time} "
                f"(clock is at t={self._now})"
            )
        event = Event(float(time), int(priority), self._seq, action, args, name)
        self._seq += 1
        if self._in_batch and event.time == self._now:
            # Same-instant event scheduled from inside a batch: it
            # belongs to the cohort being dispatched, so it goes
            # straight into the priority buckets and never pays the
            # heap round-trip.  FIFO within a bucket is automatic —
            # seq numbers are monotone and appends happen in seq order.
            self._enqueue_bucket(event)
        else:
            heapq.heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, self)

    def after(
        self,
        delay: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
        name: str = "",
    ) -> EventHandle:
        """Schedule *action(*args)* after *delay* seconds from now."""
        if delay < 0:
            raise EventOrderError(f"negative delay {delay} for {name or action!r}")
        return self.at(self._now + delay, action, *args, priority=priority, name=name)

    def every(
        self,
        interval: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
        name: str = "",
        start_offset: Optional[float] = None,
        until: Optional[float] = None,
    ) -> EventHandle:
        """Schedule *action* periodically every *interval* seconds.

        The returned handle cancels the whole periodic chain.  The first
        firing is at ``now + (start_offset if given else interval)``;
        firings stop once the next slot would exceed *until* (if given).
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be > 0, got {interval}")

        first = self._now + (interval if start_offset is None else start_offset)
        if until is not None and first > until:
            # Nothing to do; return an already-cancelled handle.
            dummy = Event(self._now, int(priority), self._seq, lambda: None)
            self._seq += 1
            dummy.cancelled = True  # never entered the heap: no counters
            return EventHandle(dummy, self)
        chain = PeriodicChain(
            self, float(interval), action, args, int(priority),
            name or "periodic", until, epoch=float(first), index=0,
        )
        chain.handle = self.at(first, chain._tick, priority=priority, name=chain.name)
        return _ChainHandle(chain)

    # ------------------------------------------------------------------
    # State capture/restore support (used by repro.state)
    # ------------------------------------------------------------------
    def iter_live_events(self) -> List[Event]:
        """Live (pending, not cancelled) events in firing order.

        Sorted by the event total order ``(time, priority, seq)`` —
        exactly the order :meth:`step` would pop them.  Includes events
        currently parked in same-instant batch buckets (only possible
        when called from inside a :meth:`run_batched` event).
        """
        live = [e for e in self._heap if not e.cancelled]
        for q in self._buckets.values():
            live.extend(e for e in q if not e.cancelled and not e.done)
        live.sort()
        return live

    def clear_events(self) -> None:
        """Drop every pending event (restore support: the state
        subsystem wipes a freshly-built simulation's heap before
        grafting the captured one).

        Cleared events are marked cancelled+done so any handle still
        pointing at one becomes a no-op instead of corrupting the
        live/tombstone counters.
        """
        for event in self._heap:
            event.cancelled = True
            event.done = True
        for q in self._buckets.values():
            for event in q:
                event.cancelled = True
                event.done = True
                event.in_bucket = False
        self._heap.clear()
        self._buckets.clear()
        self._bucket_order.clear()
        self._bucket_pos.clear()
        self._live = 0
        self._tombstones = 0

    def restore_clock(self, now: float, seq: int, events_fired: int) -> None:
        """Overwrite clock/sequence counters with captured values.

        The sequence counter must be restored exactly: future events
        scheduled after a restore must receive the same seq numbers
        (and hence the same FIFO tie-breaks) as in the original run.
        """
        self._now = float(now)
        self._seq = int(seq)
        self._events_fired = int(events_fired)

    def restore_event(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[..., Any],
        args: tuple = (),
        name: str = "",
    ) -> EventHandle:
        """Re-plant a captured event with its original sequence number.

        Unlike :meth:`at` this does not consume the seq counter — the
        caller replays recorded seqs and restores the counter itself
        via :meth:`restore_clock`.
        """
        event = Event(float(time), int(priority), int(seq), action, tuple(args), name)
        heapq.heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, self)

    def restore_periodic(
        self,
        interval: float,
        action: Callable[..., Any],
        args: tuple,
        priority: int,
        name: str,
        until: Optional[float],
        next_time: float,
        seq: int,
        epoch: Optional[float] = None,
        index: int = 0,
    ) -> EventHandle:
        """Re-plant a periodic chain with its pending tick at *next_time*
        carrying the captured *seq*.  Returns the chain handle.

        *epoch* and *index* restore the phase-locked grid so the chain
        keeps firing at ``epoch + k * interval`` exactly as the
        original run would have; with no epoch (legacy descriptions)
        the grid re-anchors at *next_time*.
        """
        chain = PeriodicChain(
            self, float(interval), action, tuple(args), int(priority),
            name or "periodic", until,
            epoch=float(next_time if epoch is None else epoch),
            index=int(index),
        )
        chain.handle = self.restore_event(
            next_time, priority, seq, chain._tick, (), chain.name
        )
        return _ChainHandle(chain)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            event.done = True
            self._live -= 1
            self._now = event.time
            self._events_fired += 1
            event.fire()
            if self.observer is not None:
                self.observer(event)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time; the clock is then
            advanced exactly to *until*.  ``None`` runs to exhaustion.
        max_events:
            Safety valve for runaway simulations; raises
            :class:`SimulationError` when exceeded.

        Returns the final clock value.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    self._tombstones -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                event.done = True
                self._live -= 1
                self._now = event.time
                self._events_fired += 1
                event.fire()
                if self.observer is not None:
                    self.observer(event)
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            if until is not None and until > self._now:
                self._now = float(until)
        finally:
            self._running = False
        return self._now

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def _enqueue_bucket(self, event: Event) -> None:
        """Park *event* in its same-instant priority bucket."""
        event.in_bucket = True
        q = self._buckets.get(event.priority)
        if q is None:
            self._buckets[event.priority] = [event]
            insort(self._bucket_order, event.priority)
        else:
            q.append(event)

    def _flush_buckets(self) -> None:
        """Push undispatched bucket events back into the heap (early
        exit from run_batched: stop condition, max_events, or an
        exception inside an action).  Cancelled stragglers are dropped
        outright — their cancel never entered the heap tombstone
        counters, so nothing needs rebalancing."""
        if not self._buckets:
            return
        for p, q in self._buckets.items():
            for event in q[self._bucket_pos.get(p, 0):]:
                event.in_bucket = False
                if not event.cancelled and not event.done:
                    heapq.heappush(self._heap, event)
        self._buckets.clear()
        self._bucket_order.clear()
        self._bucket_pos.clear()

    def _fire(self, event: Event, fired: int, max_events: Optional[int]) -> int:
        """Execute one live event (shared by both batch paths)."""
        event.done = True
        self._live -= 1
        self._events_fired += 1
        event.action(*event.args)
        if self.observer is not None:
            self.observer(event)
        fired += 1
        if max_events is not None and fired >= max_events:
            raise SimulationError(
                f"exceeded max_events={max_events}; runaway simulation?"
            )
        return fired

    def run_batched(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run the event loop, draining same-timestamp cohorts in bulk.

        Event-for-event identical to :meth:`run` — same firing order,
        same observer stream, same counters — but each cohort of
        events at one timestamp is pulled off the heap in a single
        drain and dispatched through per-priority FIFO buckets:

        * events scheduled *at the current instant* from inside the
          cohort (coalesced schedule passes, control reactions) append
          to the buckets directly and never pay a heap push/pop;
        * a batch event scheduling a *lower*-tier same-instant event
          preempts the remaining higher-tier events, exactly as the
          heap order ``(time, priority, seq)`` demands;
        * an event cancelled by an earlier event in its own cohort is
          skipped in place.

        Timestamps with a single pending event (sparse replay regions)
        bypass the bucket machinery entirely.

        Parameters match :meth:`run`, plus *stop*: an optional
        zero-argument callable checked before the first event and
        after every fired event; returning True ends the run
        immediately (undispatched cohort events are flushed back into
        the heap, so a later ``run``/``step`` continues correctly).

        If :attr:`cohort_hook` is set when the run starts, it is
        invoked once after each fully dispatched cohort (it is *not*
        called on an early exit mid-cohort — callers flush their sinks
        after the run returns).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._in_batch = True
        fired = 0
        heap = self._heap
        buckets = self._buckets
        order = self._bucket_order
        pos = self._bucket_pos
        hook = self.cohort_hook
        try:
            if stop is not None and stop():
                return self._now
            while True:
                # Next live cohort time.
                while heap and heap[0].cancelled:
                    heapq.heappop(heap)
                    self._tombstones -= 1
                if not heap:
                    break
                t = heap[0].time
                if until is not None and t > until:
                    break
                self._now = t
                first = heapq.heappop(heap)
                if not heap or heap[0].time != t:
                    # Singleton fast path: no bucket bookkeeping.  Any
                    # same-instant events the action schedules land in
                    # the buckets and are dispatched below.
                    fired = self._fire(first, fired, max_events)
                    if stop is not None and stop():
                        return self._now
                    if not order:
                        if hook is not None:
                            hook()
                        continue
                else:
                    self._enqueue_bucket(first)
                    while heap and heap[0].time == t:
                        ev = heapq.heappop(heap)
                        if ev.cancelled:
                            self._tombstones -= 1
                            continue
                        self._enqueue_bucket(ev)
                # Dispatch tier by tier.  New same-instant events keep
                # appending while we iterate; a lower tier appearing
                # mid-bucket preempts (heap order would fire it first).
                while order:
                    p = order[0]
                    q = buckets[p]
                    i = pos.get(p, 0)
                    preempted = False
                    while i < len(q):
                        ev = q[i]
                        i += 1
                        if ev.cancelled:
                            ev.in_bucket = False
                            continue
                        ev.in_bucket = False
                        fired = self._fire(ev, fired, max_events)
                        if stop is not None and stop():
                            pos[p] = i
                            return self._now
                        if order[0] != p:
                            pos[p] = i
                            preempted = True
                            break
                    if not preempted:
                        del buckets[p]
                        pos.pop(p, None)
                        order.remove(p)
                if hook is not None:
                    hook()
            if until is not None and until > self._now:
                self._now = float(until)
        finally:
            self._flush_buckets()
            self._in_batch = False
            self._running = False
        return self._now
