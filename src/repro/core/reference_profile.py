"""Reference list-based free-node profile — executable spec.

This is the PR-2 pure-Python :class:`FreeNodeProfile` (bisect +
monotone-deque sliding-window minimum over plain lists), preserved
verbatim so the array-backed rewrite in :mod:`repro.core.profile` has
a decision-for-decision oracle.  The hypothesis sweep in
``tests/test_profile_equivalence.py`` drives randomized
release/reserve/query sequences through both implementations and pins
them identical; keep this module free of numpy and kernel dispatch so
it stays trivially auditable.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Iterable, List, Optional, Tuple

from ..errors import SchedulingError

__all__ = ["ReferenceFreeNodeProfile"]


class ReferenceFreeNodeProfile:
    """Step function of free-node counts over ``[origin, +inf)``.

    Same contract as :class:`repro.core.profile.FreeNodeProfile`;
    see that class for the full parameter documentation.
    """

    __slots__ = ("times", "free", "_monotone")

    def __init__(self, origin: float, free: int) -> None:
        self.times: List[float] = [float(origin)]
        self.free: List[int] = [int(free)]
        self._monotone = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_releases(
        cls,
        origin: float,
        free_now: int,
        releases: Iterable[Tuple[float, int]],
    ) -> "ReferenceFreeNodeProfile":
        """Build a profile from ``(time, nodes_released)`` events."""
        merged: dict = {}
        base = int(free_now)
        for time, count in releases:
            if count < 0:
                raise SchedulingError(
                    f"release of {count} nodes at t={time}: counts must be >= 0"
                )
            if time <= origin:
                base += count
            else:
                merged[time] = merged.get(time, 0) + count
        profile = cls(origin, base)
        running = base
        for time in sorted(merged):
            running += merged[time]
            profile.times.append(float(time))
            profile.free.append(running)
        return profile

    def add_release(self, time: float, count: int) -> None:
        """Add *count* nodes becoming free at *time* (and ever after)."""
        if count < 0:
            raise SchedulingError(
                f"release of {count} nodes at t={time}: counts must be >= 0"
            )
        if count == 0:
            return
        times, free = self.times, self.free
        if time <= times[0]:
            for i in range(len(free)):
                free[i] += count
            return
        idx = self._ensure_point(time)
        for i in range(idx, len(free)):
            free[i] += count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def tail_time(self) -> float:
        return self.times[-1]

    def free_at(self, time: float) -> int:
        idx = bisect_right(self.times, time) - 1
        return self.free[idx] if idx >= 0 else self.free[0]

    def earliest_at_least(self, needed: int, not_before: float) -> Optional[float]:
        if not self._monotone:
            raise SchedulingError(
                "earliest_at_least needs a monotone profile; use earliest_fit"
            )
        free = self.free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid] >= needed:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(free):
            return None
        return not_before if lo == 0 else self.times[lo]

    def earliest_fit(self, needed: int, duration: float) -> Optional[float]:
        if self._monotone:
            return self.earliest_at_least(needed, self.times[0])
        times, free = self.times, self.free
        n = len(times)
        window: deque = deque()  # indices into free, values increasing
        j = 0
        for i in range(n):
            end = times[i] + duration
            while j < n and times[j] < end:
                while window and free[window[-1]] >= free[j]:
                    window.pop()
                window.append(j)
                j += 1
            while window and window[0] < i:
                window.popleft()
            # Degenerate zero-length window (duration <= 0): the seed
            # semantics still require the level to hold at the start.
            low = free[window[0]] if window else free[i]
            if low >= needed:
                return times[i]
        return None

    # ------------------------------------------------------------------
    # Reservations
    # ------------------------------------------------------------------
    def reserve(self, start: float, end: float, count: int) -> None:
        if count <= 0:
            raise SchedulingError(
                f"reservation of {count} nodes: counts must be > 0"
            )
        if end <= start:
            return  # empty window: nothing to subtract
        if start < self.times[0]:
            raise SchedulingError(
                f"reservation at t={start} before profile origin {self.times[0]}"
            )
        lo = self._ensure_point(start)
        hi = self._ensure_point(end)
        free = self.free
        for i in range(lo, hi):
            free[i] -= count
        self._monotone = False

    # ------------------------------------------------------------------
    def _ensure_point(self, time: float) -> int:
        times = self.times
        idx = bisect_left(times, time)
        if idx < len(times) and times[idx] == time:
            return idx
        times.insert(idx, time)
        self.free.insert(idx, self.free[idx - 1])
        return idx

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        steps = ", ".join(
            f"{t:g}:{f}" for t, f in zip(self.times[:8], self.free[:8])
        )
        more = "..." if len(self.times) > 8 else ""
        return f"ReferenceFreeNodeProfile({steps}{more})"
