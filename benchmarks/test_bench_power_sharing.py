"""Experiment ``exp-power-sharing``: Ellsworth dynamic power sharing.

Under the same machine budget, compares a uniform static per-node cap
against demand-proportional redistribution on a half-compute /
half-memory workload.  Shape claim (Ellsworth et al. [17] report
double-digit throughput gains): sharing completes the mixed workload
faster because watts unused by memory-bound nodes flow to throttled
compute-bound nodes.
"""

from __future__ import annotations

import copy

from repro.analysis.report import render_columns
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import DynamicPowerSharingPolicy, StaticCappingPolicy
from repro.workload.phases import COMPUTE_BOUND, MEMORY_BOUND

from .conftest import bench_machine, bench_workload, write_artifact


def _mixed_jobs():
    jobs = bench_workload(seed=41, count=120, nodes=48, rate_per_hour=60.0)
    for i, job in enumerate(jobs):
        job.profile = COMPUTE_BOUND if i % 2 == 0 else MEMORY_BOUND
    return jobs


def _run(mode: str, budget_fraction: float):
    machine = bench_machine(48)
    budget = machine.idle_floor_power + budget_fraction * (
        machine.peak_power - machine.idle_floor_power
    )
    if mode == "sharing":
        policies = [DynamicPowerSharingPolicy(budget_watts=budget,
                                              check_interval=300.0)]
    else:
        policies = [StaticCappingPolicy(cap_watts=budget / len(machine),
                                        capped_fraction=1.0)]
    sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                            copy.deepcopy(_mixed_jobs()), policies=policies,
                            seed=1, cap_watts_for_metrics=budget)
    return sim.run().metrics


def test_bench_power_sharing(benchmark, artifact_dir):
    fractions = (0.4, 0.6)

    def sweep():
        out = {}
        for fraction in fractions:
            for mode in ("uniform", "sharing"):
                out[(mode, fraction)] = _run(mode, fraction)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [mode, f"{frac:.0%}", f"{m.makespan / 3600:.2f}",
         f"{m.mean_bounded_slowdown:.2f}",
         f"{m.cap_exceedance_fraction:.1%}", f"{m.jobs_completed}"]
        for (mode, frac), m in results.items()
    ]
    write_artifact(
        "exp-power-sharing",
        "EXP-POWER-SHARING — uniform caps vs dynamic sharing "
        "(mixed compute/memory workload)\n\n"
        + render_columns(
            ["mode", "budget", "makespan[h]", "slowdown", "time>budget",
             "done"],
            rows,
        ),
    )

    for fraction in fractions:
        uniform = results[("uniform", fraction)]
        sharing = results[("sharing", fraction)]
        # The Ellsworth result: sharing is faster at the same budget.
        assert sharing.makespan < uniform.makespan
        # Both respect the budget (sampled).
        assert sharing.cap_exceedance_fraction <= 0.05
    # The gain is larger when the budget is tighter.
    gain_tight = (results[("uniform", 0.4)].makespan
                  / results[("sharing", 0.4)].makespan)
    gain_loose = (results[("uniform", 0.6)].makespan
                  / results[("sharing", 0.6)].makespan)
    assert gain_tight >= gain_loose * 0.95
