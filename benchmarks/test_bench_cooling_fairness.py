"""Experiments ``exp-cooling`` and ``exp-fairshare``.

* LRZ research: "scheduler may delay jobs when IT infrastructure is
  particularly inefficient" — cooling-aware delaying shifts deferrable
  work into efficient (cool) hours, cutting *facility* energy at equal
  IT energy.
* Survey Q3(d) lists fairness among scheduling goals; the fair-share
  bench shows decayed-usage ordering equalizing wait times between a
  heavy and a light user, where plain EASY lets the heavy user's
  flood dominate.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.analysis.report import render_columns
from repro.cluster import Machine, MachineSpec
from repro.cluster.site import Site
from repro.cluster.thermal import AmbientModel, CoolingModel
from repro.core import (
    ClusterSimulation,
    EasyBackfillScheduler,
    FairShareAccountingPolicy,
    FairShareScheduler,
)
from repro.policies import CoolingAwarePolicy
from repro.units import DAY, HOUR
from repro.workload.phases import COMPUTE_BOUND
from tests.conftest import make_job

from .conftest import bench_machine, write_artifact


def _job_facility_energy(result, site) -> float:
    """Facility energy attributable to the jobs: each job's IT energy
    scaled by the instantaneous PUE at its mid-run time.

    This isolates the claim under test — "run the work when cooling is
    efficient" — from idle-time bookkeeping differences.
    """
    total = 0.0
    for job in result.completed_jobs():
        mid = 0.5 * (job.start_time + job.end_time)
        ambient = site.ambient.temperature(mid)
        total += job.energy_joules * site.cooling.pue(ambient)
    return total


def test_bench_cooling_aware(benchmark, artifact_dir):
    from repro.policies import IdleShutdownPolicy

    def shutdown():
        # Both variants park idle nodes: deferring work must not be
        # billed for idle draw a real deployment would eliminate.
        return IdleShutdownPolicy(idle_threshold=600.0, min_spare=2,
                                  check_interval=300.0)

    def sweep():
        out = {}
        for label, policies_factory in (
            ("baseline", lambda site: [shutdown()]),
            ("cooling-aware", lambda site: [
                CoolingAwarePolicy(pue_threshold=1.22, max_delay=16 * HOUR),
                shutdown(),
            ]),
        ):
            machine = bench_machine(32)
            site = Site(
                "lrz-like", [machine],
                ambient=AmbientModel(mean=16.0, seasonal_amplitude=0.0,
                                     diurnal_amplitude=10.0),
                cooling=CoolingModel(cop_max=8.0, cop_min=2.5,
                                     free_cooling_below=10.0,
                                     design_ambient=28.0),
            )
            # Daytime-submitted deferrable batch work.
            jobs = [
                make_job(job_id=f"j{i}", nodes=4, work=1800.0,
                         walltime=7200.0, submit=10 * HOUR + i * 600.0,
                         profile=COMPUTE_BOUND)
                for i in range(16)
            ]
            sim = ClusterSimulation(
                machine, EasyBackfillScheduler(), copy.deepcopy(jobs),
                policies=policies_factory(site), site=site,
            )
            result = sim.run()
            job_it = sum(j.energy_joules for j in result.completed_jobs())
            out[label] = (result.metrics, job_it,
                          _job_facility_energy(result, site))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [label, f"{it / 3.6e9:.4f}", f"{facility / 3.6e9:.4f}",
         f"{facility / it:.3f}", f"{m.mean_wait / 3600:.2f}",
         f"{m.jobs_completed}"]
        for label, (m, it, facility) in results.items()
    ]
    write_artifact(
        "exp-cooling",
        "EXP-COOLING — cooling-aware delaying (diurnal ambient, "
        "PUE threshold 1.22)\n\n"
        + render_columns(
            ["mode", "job IT[MWh]", "job facility[MWh]", "eff. PUE",
             "wait[h]", "done"],
            rows,
        ),
    )

    base_m, base_it, base_fac = results["baseline"]
    aware_m, aware_it, aware_fac = results["cooling-aware"]
    # The work (job IT energy) is identical.
    assert aware_it == pytest.approx(base_it, rel=0.02)
    # The effective PUE of the work drops: it ran in efficient hours.
    assert aware_fac / aware_it < (base_fac / base_it) - 0.03
    assert aware_m.jobs_completed == base_m.jobs_completed
    # The price is deferral: waits grew by hours, bounded by max_delay.
    assert HOUR < aware_m.mean_wait <= 16 * HOUR


def test_bench_fairshare(benchmark, artifact_dir):
    def build_jobs():
        # Heavy user floods the queue first; light user trickles in.
        jobs = [
            make_job(job_id=f"h{i}", nodes=4, work=1200.0, walltime=4000.0,
                     submit=float(i), user="heavy")
            for i in range(14)
        ] + [
            make_job(job_id=f"l{i}", nodes=4, work=1200.0, walltime=4000.0,
                     submit=100.0 + i * 400.0, user="light")
            for i in range(4)
        ]
        return jobs

    def run(label):
        machine = Machine(MachineSpec(name="m", nodes=8))
        if label == "fairshare":
            scheduler = FairShareScheduler(half_life=1 * DAY)
            policies = [FairShareAccountingPolicy(scheduler)]
        else:
            scheduler = EasyBackfillScheduler()
            policies = []
        sim = ClusterSimulation(machine, scheduler,
                                copy.deepcopy(build_jobs()),
                                policies=policies)
        result = sim.run()
        waits = {}
        for job in result.jobs:
            waits.setdefault(job.user, []).append(job.wait_time or 0.0)
        return result.metrics, {u: float(np.mean(w)) for u, w in waits.items()}

    def sweep():
        return {label: run(label) for label in ("easy", "fairshare")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [label, f"{waits['heavy']:.0f}", f"{waits['light']:.0f}",
         f"{waits['light'] / max(waits['heavy'], 1.0):.2f}"]
        for label, (m, waits) in results.items()
    ]
    write_artifact(
        "exp-fairshare",
        "EXP-FAIRSHARE — mean wait per user, heavy flood vs light "
        "trickle\n\n"
        + render_columns(
            ["scheduler", "heavy wait[s]", "light wait[s]",
             "light/heavy"],
            rows,
        ),
    )

    easy_waits = results["easy"][1]
    fair_waits = results["fairshare"][1]
    # Under plain EASY the light user queues behind the flood; under
    # fair-share the light user's relative position improves sharply.
    easy_ratio = easy_waits["light"] / max(easy_waits["heavy"], 1.0)
    fair_ratio = fair_waits["light"] / max(fair_waits["heavy"], 1.0)
    assert fair_ratio < easy_ratio * 0.6
    assert fair_waits["light"] < easy_waits["light"]
