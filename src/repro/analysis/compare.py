"""Pairwise comparison of metric reports."""

from __future__ import annotations

from typing import Dict

from ..core.metrics import MetricsReport


def relative_change(baseline: float, candidate: float) -> float:
    """(candidate - baseline) / |baseline|; 0 when both are zero."""
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    return (candidate - baseline) / abs(baseline)


def compare_metrics(
    baseline: MetricsReport, candidate: MetricsReport
) -> Dict[str, float]:
    """Relative change of every shared scalar metric.

    Positive values mean the candidate is higher; interpretation
    (better/worse) depends on the metric.
    """
    base = baseline.as_dict()
    cand = candidate.as_dict()
    return {
        key: relative_change(base[key], cand[key])
        for key in base
        if key in cand and isinstance(base[key], (int, float))
    }
