"""Node-selection (allocation) strategies.

Given a job that fits, *which* nodes should it get?  Three strategies
from the surveyed material:

* first-fit — the baseline every resource manager implements;
* topology-aware — survey Q6's "topology-aware task allocation, as a
  way of ... indirectly improving energy consumption (by improving
  application performance, resulting in reduced wallclock time)";
* low-power-first — exploit manufacturing variability ([25], [39]) by
  preferring nodes that draw less power for the same work.

Each strategy defines its semantics on the scalar object path
(:meth:`Allocator.select`, Python lists + ``sorted``).  Strategies
whose ordering is a pure key sort additionally implement
:meth:`Allocator.select_rows` over a :class:`~repro.core.scheduler.RowPool`
— one numpy kernel over the pool's row indices instead of a Python
sort of node objects — flagged by ``supports_rows``.  Row selection is
*decision-identical* to the scalar sort (same nodes, same order,
including tie-breaking by node id); the equivalence is pinned by
randomized tests in ``tests/test_core_allocator.py``.
"""

from __future__ import annotations

from operator import attrgetter
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..cluster.machine import Machine
from ..cluster.node import Node
from ..cluster.topology import Topology
from ..errors import AllocationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .scheduler import RowPool


def check_pool(available: int, requested: int) -> None:
    """Raise a structured :class:`AllocationError` unless *requested*
    nodes can come out of a pool of *available*."""
    if requested <= 0:
        raise AllocationError(
            f"cannot allocate {requested} nodes",
            requested=requested,
            available=available,
        )
    if available < requested:
        raise AllocationError(
            f"need {requested} nodes, only {available} available",
            requested=requested,
            available=available,
        )


class Allocator:
    """Base class: pick ``count`` nodes from the available pool."""

    name = "base"

    #: True when :meth:`select_rows` is implemented; schedulers then
    #: feed the allocator a RowPool instead of materialized node lists.
    supports_rows = False

    def begin_pass(self, now: float) -> None:
        """Called once at the top of every scheduling pass, before any
        ``select`` calls.  Stateful allocators reset/derive per-pass
        state here (e.g. sampled-seed draws) so repeated selections
        within one pass are deterministic.  Default: no-op."""

    def select(
        self, machine: Machine, available: Sequence[Node], count: int
    ) -> List[Node]:
        """Return exactly *count* nodes from *available*.

        Raises :class:`AllocationError` if the pool is too small —
        callers are expected to check fit first.
        """
        raise NotImplementedError

    def select_rows(self, pool: "RowPool", count: int) -> np.ndarray:
        """Row-index twin of :meth:`select` over a RowPool (only when
        ``supports_rows``); must return the same nodes in the same
        order as the scalar path."""
        raise NotImplementedError(f"{self.name} has no row selection path")

    def _check(self, available: Sequence[Node], count: int) -> None:
        check_pool(len(available), count)


class FirstFitAllocator(Allocator):
    """Lowest node ids first — deterministic baseline."""

    name = "first-fit"
    supports_rows = True

    def select(
        self, machine: Machine, available: Sequence[Node], count: int
    ) -> List[Node]:
        self._check(available, count)
        return sorted(available, key=attrgetter("node_id"))[:count]

    def select_rows(self, pool: "RowPool", count: int) -> np.ndarray:
        # Pool rows are already in ascending id order: first-fit is a
        # monotone slice, no sort at all.
        return pool.rows[:count]


class LowPowerAllocator(Allocator):
    """Prefer nodes with the lowest variability-adjusted max power.

    Under a power budget, efficient nodes buy more throughput per watt
    (Inadomi et al. [25]).  Ties break on node id for determinism.
    """

    name = "low-power"
    supports_rows = True

    def select(
        self, machine: Machine, available: Sequence[Node], count: int
    ) -> List[Node]:
        self._check(available, count)
        return sorted(
            available, key=attrgetter("effective_max_power", "node_id")
        )[:count]

    def select_rows(self, pool: "RowPool", count: int) -> np.ndarray:
        """Decision-identical to ``sorted(key=(eff_max_power, id))[:count]``
        without sorting the whole pool: an O(n) argpartition bounds the
        winning key, the boundary is resolved in id order (equal keys
        cannot straddle the strict/equal split, and ``flatnonzero``
        yields ascending rows == ascending ids), and only the *count*
        winners are sorted."""
        rows = pool.rows
        keys = pool.selection.eff_max_power(rows)
        if count >= rows.size:
            pick = np.arange(rows.size)
        else:
            part = np.argpartition(keys, count - 1)[:count]
            thresh = keys[part].max()
            strict = np.flatnonzero(keys < thresh)
            eq = np.flatnonzero(keys == thresh)
            pick = np.concatenate((strict, eq[: count - strict.size]))
        order = np.argsort(keys[pick], kind="stable")
        return rows[pick[order]]


class TopologyAwareAllocator(Allocator):
    """Greedy compact placement on the machine's topology.

    Strategy: try each cabinet-aligned contiguous window first (cheap
    and usually compact); fall back to a greedy nearest-neighbour
    expansion from the best seed.  Falls back to first-fit when the
    machine has no topology.

    Seeds for the greedy expansion are deterministic stride positions
    by default.  With ``rng_seed`` set they are *sampled* instead —
    drawn once per scheduling pass in :meth:`begin_pass` and cached,
    so repeated ``select()`` calls within one pass reuse the same
    draws (and a ``select()`` call never advances RNG state: calling
    it twice with the same pool yields the same placement).
    """

    name = "topology-aware"

    def __init__(
        self, sample_seeds: int = 4, rng_seed: Optional[int] = None
    ) -> None:
        self.sample_seeds = max(1, int(sample_seeds))
        self.rng_seed = rng_seed
        #: Scheduling passes seen so far; the per-pass RNG is derived
        #: from (rng_seed, pass number), so replaying a run re-derives
        #: identical draws pass for pass.
        self._passes = 0
        #: Cached uniform [0, 1) draws for this pass (None in
        #: stride-seed mode).
        self._pass_draws: Optional[List[float]] = None

    def begin_pass(self, now: float) -> None:
        self._passes += 1
        if self.rng_seed is not None:
            rng = np.random.default_rng((self.rng_seed, self._passes))
            self._pass_draws = rng.random(self.sample_seeds).tolist()

    def _seed_indices(self, pool_size: int) -> List[int]:
        """Greedy-expansion seed positions into the ordered pool."""
        if self._pass_draws is not None:
            # Map the cached fractions onto the current pool; dedupe
            # while keeping ascending order for determinism.
            last = pool_size - 1
            return sorted({
                min(last, int(draw * pool_size))
                for draw in self._pass_draws
            })
        step = max(1, pool_size // self.sample_seeds)
        return list(range(0, pool_size, step))

    def select(
        self, machine: Machine, available: Sequence[Node], count: int
    ) -> List[Node]:
        self._check(available, count)
        topo: Optional[Topology] = machine.topology
        ordered = sorted(available, key=attrgetter("node_id"))
        if topo is None or count == 1:
            return ordered[:count]

        # Contiguous-id window: in all three topology builders node ids
        # are laid out with locality, so a contiguous window is compact.
        best_window: Optional[List[Node]] = None
        best_cost = float("inf")
        ids = [n.node_id for n in ordered]
        for start in range(0, len(ordered) - count + 1):
            window_ids = ids[start : start + count]
            # Perfectly contiguous windows are likely compact; score them.
            if window_ids[-1] - window_ids[0] == count - 1:
                cost = topo.placement_cost(window_ids)
                if cost < best_cost:
                    best_cost = cost
                    best_window = ordered[start : start + count]
        if best_window is not None:
            return best_window

        # Greedy expansion from a few seeds.
        best_sel: Optional[List[Node]] = None
        for seed_idx in self._seed_indices(len(ordered)):
            seed = ordered[seed_idx]
            chosen = [seed]
            rest = [n for n in ordered if n is not seed]
            while len(chosen) < count:
                nearest = min(
                    rest,
                    key=lambda n: (
                        min(topo.distance(n.node_id, c.node_id) for c in chosen),
                        n.node_id,
                    ),
                )
                chosen.append(nearest)
                rest.remove(nearest)
            cost = topo.placement_cost([n.node_id for n in chosen])
            if best_sel is None or cost < best_cost:
                best_sel, best_cost = chosen, cost
        assert best_sel is not None
        return best_sel
