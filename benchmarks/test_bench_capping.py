"""Experiment ``exp-capping``: KAUST-style static partition capping.

Sweeps the capped fraction (at the paper's 270 W level on a 400 W-peak
node model) and the cap level (at the paper's 70 % fraction), printing
the guaranteed worst-case power bound against the throughput/slowdown
cost.  Shape claims: the power bound falls monotonically with both the
fraction and the cap depth, while runtimes of compute-bound work
stretch — the exact trade KAUST accepted in production.

Ablation (DESIGN.md): capped-fraction sweep doubles as the ablation of
the 70 % choice.
"""

from __future__ import annotations

import copy

from repro.analysis.report import render_columns
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import StaticCappingPolicy
from repro.workload.phases import COMPUTE_BOUND

from .conftest import bench_machine, bench_workload, write_artifact

CAP_WATTS = 270.0
FRACTIONS = (0.0, 0.3, 0.5, 0.7, 1.0)
CAP_LEVELS = (200.0, 270.0, 340.0)


def _run(fraction: float, cap: float):
    machine = bench_machine(48)
    jobs = bench_workload(seed=17, count=120, nodes=48, rate_per_hour=50.0)
    for job in jobs:
        job.profile = COMPUTE_BOUND  # worst case for capping
    policies = []
    policy = None
    if fraction > 0.0:
        policy = StaticCappingPolicy(cap_watts=cap, capped_fraction=fraction)
        policies.append(policy)
    sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                            copy.deepcopy(jobs), policies=policies, seed=1)
    result = sim.run()
    bound = policy.worst_case_power() if policy else machine.peak_power
    return result.metrics, bound


def test_bench_capping_fraction_sweep(benchmark, artifact_dir):
    def sweep():
        return {f: _run(f, CAP_WATTS) for f in FRACTIONS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for fraction, (metrics, bound) in results.items():
        rows.append([
            f"{fraction:.0%}",
            f"{bound / 1e3:.1f}",
            f"{metrics.peak_power_watts / 1e3:.1f}",
            f"{metrics.mean_bounded_slowdown:.2f}",
            f"{metrics.makespan / 3600:.2f}",
            f"{metrics.jobs_completed}",
        ])
    write_artifact(
        "exp-capping-fraction",
        f"EXP-CAPPING — capped fraction sweep at {CAP_WATTS:.0f} W "
        f"(48 nodes, compute-bound)\n\n"
        + render_columns(
            ["fraction", "bound[kW]", "peak[kW]", "slowdown", "makespan[h]",
             "done"],
            rows,
        ),
    )

    bounds = [results[f][1] for f in FRACTIONS]
    # Guaranteed bound falls monotonically with the capped fraction.
    assert all(a >= b for a, b in zip(bounds, bounds[1:]))
    # The KAUST point (70 %) cuts the worst case by >20 % vs uncapped.
    assert results[0.7][1] <= 0.8 * results[0.0][1]
    # Capping costs time on compute-bound work.
    assert results[1.0][0].makespan >= results[0.0][0].makespan


def test_bench_capping_level_sweep(benchmark, artifact_dir):
    def sweep():
        return {c: _run(0.7, c) for c in CAP_LEVELS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{cap:.0f}", f"{bound / 1e3:.1f}",
         f"{metrics.mean_bounded_slowdown:.2f}",
         f"{metrics.makespan / 3600:.2f}"]
        for cap, (metrics, bound) in results.items()
    ]
    write_artifact(
        "exp-capping-level",
        "EXP-CAPPING — cap level sweep at 70% capped fraction\n\n"
        + render_columns(["cap[W]", "bound[kW]", "slowdown", "makespan[h]"],
                         rows),
    )
    bounds = [results[c][1] for c in CAP_LEVELS]
    # Deeper caps -> lower bound.
    assert all(a <= b for a, b in zip(bounds, bounds[1:]))
    # Deeper caps -> no faster completion.
    makespans = [results[c][0].makespan for c in CAP_LEVELS]
    assert makespans[0] >= makespans[-1] - 1e-6
