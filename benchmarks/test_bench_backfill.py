"""Experiment ``exp-backfill``: FCFS vs EASY vs conservative.

The baseline shape from Mu'alem & Feitelson [35] that all surveyed
production schedulers build on: backfilling massively improves wait
time and bounded slowdown over strict FCFS at equal or better
utilization, with conservative backfilling between the two on
aggressiveness.
"""

from __future__ import annotations

import copy

from repro.analysis import ExperimentRunner, Variant
from repro.analysis.report import render_dict_table
from repro.core import (
    ClusterSimulation,
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FcfsScheduler,
)

from .conftest import bench_machine, bench_workload, write_artifact

METRICS = ["mean_wait", "mean_bounded_slowdown", "utilization",
           "jobs_completed", "makespan"]


def _runner():
    base_jobs = bench_workload(seed=13, count=200, nodes=64,
                               rate_per_hour=60.0)

    def variant(name, scheduler_cls):
        def build():
            return ClusterSimulation(
                bench_machine(64), scheduler_cls(),
                copy.deepcopy(base_jobs), seed=1,
            )
        return Variant(name, build)

    return ExperimentRunner([
        variant("fcfs", FcfsScheduler),
        variant("easy", EasyBackfillScheduler),
        variant("conservative", ConservativeBackfillScheduler),
    ])


def test_bench_backfill_comparison(benchmark, artifact_dir):
    runner = _runner()
    benchmark.pedantic(runner.run_all, rounds=1, iterations=1)
    table = runner.metric_table(METRICS)
    write_artifact(
        "exp-backfill",
        "EXP-BACKFILL — scheduler baselines (200 jobs, 64 nodes)\n\n"
        + render_dict_table(table, row_label="scheduler"),
    )

    fcfs = table["fcfs"]
    easy = table["easy"]
    conservative = table["conservative"]
    # Everyone completes the work.
    assert fcfs["jobs_completed"] == 200
    assert easy["jobs_completed"] == 200
    assert conservative["jobs_completed"] == 200
    # The canonical result: EASY at least halves FCFS's slowdown.
    assert easy["mean_bounded_slowdown"] <= 0.5 * fcfs["mean_bounded_slowdown"]
    assert easy["mean_wait"] < fcfs["mean_wait"]
    # Conservative also beats FCFS.
    assert conservative["mean_bounded_slowdown"] < fcfs["mean_bounded_slowdown"]
    # Backfilling never hurts utilization.
    assert easy["utilization"] >= fcfs["utilization"] - 0.02
