"""Experiments ``exp-resilience`` and ``exp-predictive-backfill``.

* Resilience: EPA policies must coexist with hardware attrition.  The
  bench runs the KAUST-style capped machine under node failures and
  checks the partition survives (caps persist through repair cycles,
  lost work is bounded by the failure rate).
* Predictive backfilling (Tsafrir et al., building on [35]): learned
  runtime estimates in the backfill math improve packing over raw user
  requests — while walltime kills stay at the request, so nothing is
  lost.
"""

from __future__ import annotations

import copy

from repro.analysis.report import render_columns
from repro.cluster import FailureInjector
from repro.core import (
    ClusterSimulation,
    EasyBackfillScheduler,
    PredictiveEasyScheduler,
    RuntimeLearningPolicy,
)
from repro.policies import StaticCappingPolicy
from repro.prediction import UserRuntimePredictor
from repro.units import HOUR

from .conftest import bench_machine, bench_workload, write_artifact


def test_bench_resilience(benchmark, artifact_dir):
    def sweep():
        out = {}
        for label, mtbf_factor in (("healthy", None), ("mtbf-2h", 2.0),
                                   ("mtbf-30m", 0.5)):
            machine = bench_machine(48)
            jobs = bench_workload(seed=71, count=120, nodes=48,
                                  rate_per_hour=60.0)
            sim = ClusterSimulation(
                machine, EasyBackfillScheduler(), copy.deepcopy(jobs),
                policies=[StaticCappingPolicy(cap_watts=270.0,
                                              capped_fraction=0.7)],
                seed=3,
            )
            injector = None
            if mtbf_factor is not None:
                injector = FailureInjector(
                    sim, node_mtbf=48 * mtbf_factor * HOUR,
                    repair_time=1.0 * HOUR,
                )
                injector.arm()
            result = sim.run()
            out[label] = (result.metrics,
                          injector.failures if injector else 0,
                          injector.jobs_lost if injector else 0)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [label, f"{fails}", f"{lost}", f"{m.jobs_completed}",
         f"{m.utilization:.2f}", f"{m.makespan / 3600:.2f}"]
        for label, (m, fails, lost) in results.items()
    ]
    write_artifact(
        "exp-resilience",
        "EXP-RESILIENCE — KAUST-style capped machine under node "
        "failures (repair 1h)\n\n"
        + render_columns(
            ["fleet", "failures", "jobs lost", "completed", "util",
             "makespan[h]"],
            rows,
        ),
    )

    healthy = results["healthy"][0]
    light = results["mtbf-2h"]
    heavy = results["mtbf-30m"]
    assert healthy.jobs_killed == 0
    # Losses scale with the failure rate.
    assert heavy[2] >= light[2]
    # Throughput degrades gracefully, not catastrophically.
    assert heavy[0].jobs_completed >= 0.7 * healthy.jobs_completed
    # All jobs are accounted for (completed + killed) in every fleet.
    for metrics, _f, _l in results.values():
        assert (metrics.jobs_completed + metrics.jobs_killed
                + metrics.jobs_timed_out == metrics.jobs_submitted)


def test_bench_predictive_backfill(benchmark, artifact_dir):
    def trained_predictor():
        # Warm the predictor on a disjoint history (yesterday's jobs):
        # per-user accuracy ratios need a few completions each.
        predictor = UserRuntimePredictor()
        history = bench_workload(seed=101, count=200, nodes=48,
                                 rate_per_hour=70.0, overestimate_mean=4.0)
        for job in history:
            job.start(job.submit_time, list(range(job.nodes)))
            job.complete(job.start_time + job.work_seconds)
            predictor.observe(job)
        return predictor

    def run(label):
        machine = bench_machine(48)
        jobs = bench_workload(seed=73, count=200, nodes=48,
                              rate_per_hour=70.0, overestimate_mean=4.0)
        if label == "predictive":
            predictor = trained_predictor()
            scheduler = PredictiveEasyScheduler(predictor=predictor)
            policies = [RuntimeLearningPolicy(predictor)]
        else:
            scheduler = EasyBackfillScheduler()
            policies = []
        sim = ClusterSimulation(machine, scheduler, copy.deepcopy(jobs),
                                policies=policies, seed=3)
        return sim.run().metrics

    def sweep():
        return {label: run(label) for label in ("request-based",
                                                "predictive")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [label, f"{m.mean_wait:.0f}", f"{m.mean_bounded_slowdown:.2f}",
         f"{m.utilization:.2f}", f"{m.jobs_completed}"]
        for label, m in results.items()
    ]
    write_artifact(
        "exp-predictive-backfill",
        "EXP-PREDICTIVE-BACKFILL — request-based vs learned-runtime "
        "EASY (4x mean over-requests)\n\n"
        + render_columns(
            ["estimates", "wait[s]", "slowdown", "util", "done"], rows,
        ),
    )

    base = results["request-based"]
    pred = results["predictive"]
    # The Tsafrir result: predictions improve responsiveness.
    assert pred.mean_bounded_slowdown < base.mean_bounded_slowdown
    # Nothing is lost: the hard limit is still the user request.
    assert pred.jobs_completed == base.jobs_completed
