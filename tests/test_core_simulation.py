"""Integration tests for ClusterSimulation: execution semantics."""

import pytest

from repro.cluster import Machine, MachineSpec, NodeState
from repro.core import ClusterSimulation, EasyBackfillScheduler, FcfsScheduler
from repro.policies.base import Policy
from repro.workload import JobState
from tests.conftest import make_job


def run_sim(machine, jobs, scheduler=None, policies=(), **kwargs):
    sim = ClusterSimulation(
        machine, scheduler or FcfsScheduler(), jobs, policies=policies, **kwargs
    )
    return sim, sim.run()


class TestBasicExecution:
    def test_single_job_runs_to_completion(self, small_machine):
        job = make_job(work=100.0, walltime=200.0)
        _, result = run_sim(small_machine, [job])
        assert job.state is JobState.COMPLETED
        assert job.start_time == 0.0
        assert job.end_time == pytest.approx(100.0)

    def test_jobs_wait_for_nodes(self, small_machine):
        a = make_job(job_id="a", nodes=16, work=100.0, walltime=150.0)
        b = make_job(job_id="b", nodes=16, work=100.0, walltime=150.0)
        _, result = run_sim(small_machine, [a, b])
        assert a.end_time == pytest.approx(100.0)
        assert b.start_time == pytest.approx(100.0)
        assert b.wait_time == pytest.approx(100.0)

    def test_submit_times_honoured(self, small_machine):
        job = make_job(submit=500.0, work=50.0)
        _, result = run_sim(small_machine, [job])
        assert job.start_time == pytest.approx(500.0)

    def test_walltime_timeout(self, small_machine):
        # Work exceeds walltime: the job is cut off.
        job = make_job(work=1000.0, walltime=100.0)
        _, result = run_sim(small_machine, [job])
        assert job.state is JobState.TIMEOUT
        assert job.end_time == pytest.approx(100.0)

    def test_nodes_released_after_job(self, small_machine):
        job = make_job(nodes=4, work=10.0)
        _, result = run_sim(small_machine, [job])
        assert all(n.state is NodeState.IDLE for n in small_machine.nodes)

    def test_energy_accounted_per_job(self, small_machine):
        job = make_job(nodes=2, work=100.0, walltime=200.0)
        _, result = run_sim(small_machine, [job])
        # 2 nodes at 350 W (balanced profile intensity < 1 lowers this)
        assert job.energy_joules > 0.0
        spec = small_machine.spec
        upper = 2 * spec.max_power * 100.0
        assert job.energy_joules <= upper * 1.01

    def test_metrics_populated(self, small_machine, small_workload):
        _, result = run_sim(small_machine, small_workload,
                            scheduler=EasyBackfillScheduler())
        m = result.metrics
        assert m.jobs_submitted == len(small_workload)
        assert m.jobs_completed + m.jobs_timed_out + m.jobs_killed == m.jobs_submitted
        assert m.total_energy_joules > 0
        assert 0.0 <= m.utilization <= 1.0

    def test_deterministic_given_seed(self, small_workload):
        import copy

        def once():
            machine = Machine(MachineSpec(name="m", nodes=16))
            jobs = copy.deepcopy(small_workload)
            _, result = run_sim(machine, jobs, scheduler=EasyBackfillScheduler(),
                                seed=5)
            return (
                result.metrics.total_energy_joules,
                result.metrics.mean_wait,
                result.final_time,
            )

        assert once() == once()

    def test_run_until_leaves_unfinished(self, small_machine):
        job = make_job(work=1000.0, walltime=2000.0)
        sim = ClusterSimulation(small_machine, FcfsScheduler(), [job])
        result = sim.run(until=500.0)
        assert job.state is JobState.RUNNING
        assert result.metrics.jobs_unfinished == 1

    def test_stall_detection_stops_unstartable(self, small_machine):
        job = make_job(nodes=999, work=10.0)  # can never run
        sim = ClusterSimulation(small_machine, FcfsScheduler(), [job])
        result = sim.run(stall_timeout=3600.0)
        assert job.state is JobState.PENDING
        assert result.metrics.jobs_unfinished == 1


class TestSpeedChanges:
    def test_frequency_drop_extends_runtime(self, small_machine):
        from repro.workload.phases import COMPUTE_BOUND

        job = make_job(work=100.0, walltime=10_000.0, profile=COMPUTE_BOUND)

        class HalveAtFifty(Policy):
            name = "halver"

            def on_attach(self):
                self.sim.at(50.0, self._halve)

            def _halve(self):
                nodes = [
                    self.simulation.machine.node(nid)
                    for nid in job.assigned_nodes
                ]
                node = nodes[0]
                self.simulation.rm.set_frequency(nodes, node.max_frequency / 2)

        _, result = run_sim(small_machine, [job], policies=[HalveAtFifty()])
        assert job.state is JobState.COMPLETED
        # 50 s at full speed + 50 work left at speed (1-0.95*0.5)=0.525.
        expected = 50.0 + 50.0 / 0.525
        assert job.end_time == pytest.approx(expected, rel=1e-6)

    def test_cap_violation_traced(self, small_machine):
        from repro.workload.phases import COMPUTE_BOUND

        job = make_job(work=50.0, walltime=10_000.0, profile=COMPUTE_BOUND)

        class TightCap(Policy):
            name = "tight"

            def configure_start(self, job, nodes, now):
                # Cap at the floor: unreachable under load.
                self.simulation.rm.set_power_cap(nodes, nodes[0].cap_floor)

        sim, result = run_sim(small_machine, [job], policies=[TightCap()])
        assert result.trace.count("power.cap_violation") >= 1


class TestKill:
    def test_kill_running_job(self, small_machine):
        job = make_job(work=1000.0, walltime=2000.0)

        class KillAt100(Policy):
            name = "killer"

            def on_attach(self):
                self.sim.at(100.0, lambda: self.simulation.kill_job(
                    job.job_id, "test"))

        _, result = run_sim(small_machine, [job], policies=[KillAt100()])
        assert job.state is JobState.KILLED
        assert job.end_time == pytest.approx(100.0)
        assert all(n.state is NodeState.IDLE for n in small_machine.nodes)

    def test_kill_unknown_job_returns_false(self, small_machine):
        sim = ClusterSimulation(small_machine, FcfsScheduler(), [])
        assert sim.kill_job("nope", "reason") is False


class TestSchedulingContext:
    def test_expected_end_honours_zero_start_time(self, small_machine):
        # A job that started at exactly t=0.0 must report
        # expected_end == walltime, not now + walltime: 0.0 is a real
        # start time, not a missing value.
        job = make_job(work=1000.0, walltime=300.0)
        sim = ClusterSimulation(small_machine, FcfsScheduler(), [job])
        sim.run(until=100.0)
        assert job.start_time == 0.0
        ctx = sim.build_context()
        (info,) = ctx.running
        assert info.expected_end == pytest.approx(300.0)

    def test_available_tracks_state_transitions(self, small_machine):
        sim = ClusterSimulation(small_machine, FcfsScheduler(), [])
        nodes = small_machine.nodes
        assert [n.node_id for n in sim.build_context().available] == list(
            range(16)
        )
        sim.rm.shutdown_nodes(nodes[4:8])
        ctx = sim.build_context()
        assert [n.node_id for n in ctx.available] == (
            list(range(4)) + list(range(8, 16))
        )
        assert ctx.usable_node_count == 16  # shutting down, not failed
        sim.rm.drain_node(nodes[0])
        ctx = sim.build_context()
        assert nodes[0] not in ctx.available
        assert ctx.usable_node_count == 15
        sim.rm.undrain_node(nodes[0])
        ctx = sim.build_context()
        assert nodes[0] in ctx.available
        assert ctx.usable_node_count == 16

    def test_boot_cycle_restores_availability(self, small_machine):
        sim = ClusterSimulation(small_machine, FcfsScheduler(), [])
        nodes = small_machine.nodes
        sim.rm.shutdown_nodes(nodes[:2])
        sim.sim.run(until=1_000.0)  # complete the shutdown
        assert nodes[0].state is NodeState.OFF
        assert len(sim.build_context().available) == 14
        sim.rm.boot_nodes(nodes[:2])
        assert len(sim.build_context().available) == 14  # still booting
        sim.sim.run(until=2_000.0)
        assert nodes[0].state is NodeState.IDLE
        ctx = sim.build_context()
        assert [n.node_id for n in ctx.available] == list(range(16))
        assert ctx.usable_node_count == 16

    def test_busy_nodes_leave_available_set(self, small_machine):
        job = make_job(nodes=6, work=500.0, walltime=1_000.0)
        sim = ClusterSimulation(small_machine, FcfsScheduler(), [job])
        sim.run(until=100.0)
        ctx = sim.build_context()
        assert len(ctx.available) == 10
        assert all(n.state is NodeState.IDLE for n in ctx.available)


class TestPolicyHooks:
    def test_hook_order_and_calls(self, small_machine):
        calls = []

        class Recorder(Policy):
            name = "recorder"
            control_interval = 50.0

            def filter_nodes(self, nodes, now):
                calls.append("filter")
                return nodes

            def admit(self, job, now):
                calls.append("admit")
                return True

            def configure_start(self, job, nodes, now):
                calls.append("configure")

            def on_job_start(self, job, now):
                calls.append("start")

            def on_job_end(self, job, now):
                calls.append("end")

            def on_tick(self, now):
                calls.append("tick")

        job = make_job(work=100.0, walltime=200.0)
        run_sim(small_machine, [job], policies=[Recorder()])
        assert "filter" in calls
        assert "admit" in calls
        assert calls.index("configure") < calls.index("start")
        assert "end" in calls
        assert "tick" in calls

    def test_filter_restricts_allocation(self, small_machine):
        class OnlyHighIds(Policy):
            name = "high-only"

            def filter_nodes(self, nodes, now):
                return [n for n in nodes if n.node_id >= 8]

        job = make_job(nodes=4, work=10.0)
        run_sim(small_machine, [job], policies=[OnlyHighIds()])
        assert all(nid >= 8 for nid in job.assigned_nodes)

    def test_admission_veto_delays(self, small_machine):
        class VetoUntil100(Policy):
            name = "veto"
            control_interval = 10.0

            def admit(self, job, now):
                return now >= 100.0

            def on_tick(self, now):
                self.simulation.request_schedule_pass()

        job = make_job(work=10.0, walltime=100.0)
        run_sim(small_machine, [job], policies=[VetoUntil100()])
        assert job.start_time >= 100.0

    def test_epa_registry_populated(self, small_machine):
        from repro.policies import StaticCappingPolicy

        sim = ClusterSimulation(
            small_machine,
            FcfsScheduler(),
            [],
            policies=[StaticCappingPolicy(cap_watts=250.0)],
        )
        assert sim.epa.is_complete
        names = [c.name for c in sim.epa.components]
        assert "static-capping" in names
        assert "power-meter" in names
