"""Shared scenario builders for the ``repro.state`` tests.

Module-level (picklable) builders producing deterministic simulations
of increasing richness, plus helpers to step a live simulation to a
cut point.  The "rich" scenario is engineered so that, mid-run, the
machine exhibits all six node states (OFF / BOOTING / IDLE / BUSY /
SHUTTING_DOWN / DOWN), active per-node power caps, altered
frequencies, and pending backfill reservations — the hard cases for
snapshot/restore.
"""

from __future__ import annotations

import functools

from repro.cluster import Machine, MachineSpec
from repro.core import (
    ClusterSimulation,
    EasyBackfillScheduler,
    FcfsScheduler,
)
from repro.policies import IdleShutdownPolicy, StaticCappingPolicy
from repro.workload import Job

_SCHEDULERS = {"fcfs": FcfsScheduler, "easy": EasyBackfillScheduler}


def make_jobs(count: int = 12, spread: float = 50.0):
    """Deterministic staggered workload for a 16-node machine."""
    return [
        Job(
            job_id=f"j{i}",
            nodes=(i % 4) + 1,
            work_seconds=500.0 + 100.0 * i,
            walltime_request=5000.0,
            submit_time=spread * i,
        )
        for i in range(count)
    ]


def build_small(seed: int = 7, backend: str = "vector",
                scheduler: str = "fcfs") -> ClusterSimulation:
    """16 nodes, 12 jobs, no policies."""
    machine = Machine(MachineSpec(name="tiny", nodes=16, nodes_per_cabinet=4))
    return ClusterSimulation(
        machine,
        _SCHEDULERS[scheduler](),
        make_jobs(),
        seed=seed,
        power_backend=backend,
    )


def build_rich(seed: int = 11, backend: str = "vector") -> ClusterSimulation:
    """Backfill + power caps + idle shutdown on a 24-node machine.

    The aggressive idle-shutdown policy keeps nodes cycling through
    OFF/BOOTING/SHUTTING_DOWN while the bursty workload keeps others
    BUSY and backfill reservations pending.
    """
    machine = Machine(MachineSpec(name="rich", nodes=24, nodes_per_cabinet=6))
    jobs = [
        Job(
            job_id=f"r{i}",
            nodes=(i % 6) + 1,
            work_seconds=400.0 + 150.0 * (i % 5),
            walltime_request=4000.0,
            submit_time=0.0 if i < 6 else 300.0 + 200.0 * i,
        )
        for i in range(18)
    ]
    return ClusterSimulation(
        machine,
        EasyBackfillScheduler(),
        jobs,
        policies=[
            StaticCappingPolicy(cap_watts=270.0, capped_fraction=0.5),
            IdleShutdownPolicy(idle_threshold=120.0, min_spare=2,
                               check_interval=60.0),
        ],
        seed=seed,
        power_backend=backend,
    )


def rich_factory(seed: int = 11, backend: str = "vector"):
    """A zero-argument factory closing over the scenario parameters."""
    return functools.partial(build_rich, seed=seed, backend=backend)


def step_until(sim_obj: ClusterSimulation, cut: float) -> ClusterSimulation:
    """Prepare *sim_obj* and fire events until the clock reaches *cut*."""
    sim_obj.prepare()
    while sim_obj.sim.now < cut and sim_obj.sim.step():
        pass
    return sim_obj
