"""Idle-node shutdown — Mämmelä et al. [33] and Tokyo Tech production.

Table I, Tokyo Tech: "Resource manager shuts down nodes that have been
idle for a long time."  The energy saving is the idle power of nodes
that would otherwise sit powered; the cost is the boot latency when
demand returns.  The policy therefore also boots nodes back when the
queue backlog exceeds what the powered pool can serve, keeping a
configurable spare margin to absorb arrivals.
"""

from __future__ import annotations

from typing import List, Tuple

from ..cluster.node import NodeState
from ..core.epa import FunctionalCategory
from ..power.vector import STATE_CODES
from ..units import check_non_negative, check_positive
from .base import Policy, _idle_rank

_IDLE = STATE_CODES[NodeState.IDLE]
_BOOTING = STATE_CODES[NodeState.BOOTING]


class IdleShutdownPolicy(Policy):
    """Shut down long-idle nodes; boot them back on queue demand.

    Parameters
    ----------
    idle_threshold:
        Seconds a node must be idle before it may be shut down.
    min_spare:
        Number of idle nodes always kept powered as headroom.
    check_interval:
        Control-loop period, seconds.
    """

    name = "idle-shutdown"

    def __init__(
        self,
        idle_threshold: float = 1800.0,
        min_spare: int = 4,
        check_interval: float = 300.0,
    ) -> None:
        super().__init__()
        self.idle_threshold = check_positive("idle_threshold", idle_threshold)
        self.min_spare = int(check_non_negative("min_spare", min_spare))
        self.control_interval = check_positive("check_interval", check_interval)
        self.energy_saved_estimate = 0.0

    # ------------------------------------------------------------------
    def _queue_demand(self) -> int:
        """Nodes wanted by the head of the queue (bounded lookahead)."""
        pending = self.simulation.queue.pending()
        return sum(job.nodes for job in pending[:16])

    def on_tick(self, now: float) -> None:
        machine = self.simulation.machine
        rm = self.simulation.rm
        demand = self._queue_demand()
        idle = machine.nodes_in_state(NodeState.IDLE)
        booting = machine.nodes_in_state(NodeState.BOOTING)
        supply = len(idle) + len(booting)

        if demand > supply:
            deficit = demand - supply
            off = sorted(rm.off_nodes(), key=lambda n: n.node_id)
            rm.boot_nodes(off[:deficit])
            return

        # Shut down surplus long-idle nodes, preserving the spare margin.
        keep = demand + self.min_spare
        surplus = len(idle) - keep
        if surplus <= 0:
            return
        candidates = rm.idle_nodes_longer_than(self.idle_threshold)
        # Longest-idle first.  ``idle_since or 0.0`` would conflate a
        # node idle since t=0 with one that has no idle timestamp; rank
        # timestamped nodes first, oldest timestamp winning, node id
        # breaking ties.
        candidates.sort(key=_idle_rank)
        to_stop = candidates[:surplus]
        for node in to_stop:
            self.energy_saved_estimate += node.idle_power * self.control_interval
        rm.shutdown_nodes(to_stop)

    def on_tick_batch(self, now: float, view) -> None:
        """SoA twin of :meth:`on_tick` for batched runs.

        Decision-identical to the scalar hook: counts come off the
        state-code array, candidate ranking is a lexsort on the same
        ``(idle_since, node_id)`` key, and ``energy_saved_estimate``
        accumulates in the same sequential order (it is captured in
        ``repro.state`` snapshots, so even summation order matters).
        """
        if view is None:
            self.on_tick(now)
            return
        rm = self.simulation.rm
        demand = self._queue_demand()
        supply = view.count_in_state(_IDLE) + view.count_in_state(_BOOTING)

        if demand > supply:
            deficit = demand - supply
            nodes = view.nodes
            rm.boot_nodes([nodes[row] for row in view.off_rows()[:deficit]])
            return

        keep = demand + self.min_spare
        surplus = view.count_in_state(_IDLE) - keep
        if surplus <= 0:
            return
        rows = view.idle_candidate_rows(self.idle_threshold)[:surplus]
        nodes = view.nodes
        to_stop = [nodes[row] for row in rows]
        for node in to_stop:
            self.energy_saved_estimate += node.idle_power * self.control_interval
        rm.shutdown_nodes(to_stop)

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "idle-shutdown",
                FunctionalCategory.RESOURCE_CONTROL,
                f"power off nodes idle > {self.idle_threshold:.0f}s, "
                f"boot on demand",
            )
        ]
