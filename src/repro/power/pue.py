"""Facility-level power: IT load plus cooling overhead.

Combines a site's cooling model and ambient model into the single
quantity facility operators (and the survey's Q2) care about: total
wall power.  LRZ's research item — a scheduler that "may delay jobs
when IT infrastructure is particularly inefficient" — is driven by the
instantaneous PUE this model exposes.
"""

from __future__ import annotations

from ..cluster.site import Site


class FacilityPowerModel:
    """Total-facility power as a function of IT load and time."""

    def __init__(self, site: Site) -> None:
        self.site = site

    def total_watts(self, it_watts: float, time: float) -> float:
        """IT load plus cooling overhead at *time*, watts."""
        ambient = self.site.ambient.temperature(time)
        return it_watts + self.site.cooling.overhead_watts(it_watts, ambient)

    def pue(self, time: float) -> float:
        """Instantaneous PUE at *time* (load-independent in this model)."""
        return self.site.cooling.pue(self.site.ambient.temperature(time))

    def efficient_now(self, time: float, pue_threshold: float = 1.25) -> bool:
        """True when the instantaneous PUE beats *pue_threshold*.

        The predicate LRZ-style infrastructure-aware delaying consults.
        """
        return self.pue(time) <= pue_threshold

    def budget_compliant(self, it_watts: float, time: float) -> bool:
        """True if IT + cooling fits the site's facility budget."""
        return self.total_watts(it_watts, time) <= self.site.facility.power_budget_watts
