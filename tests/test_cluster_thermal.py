"""Tests for the ambient and cooling models."""

import pytest

from repro.cluster.thermal import AmbientModel, CoolingModel
from repro.cluster.variability import VariabilityModel
from repro.cluster import Node
from repro.simulator import RngStreams
from repro.units import DAY


class TestAmbientModel:
    def test_seasonal_swing(self):
        model = AmbientModel(mean=10.0, seasonal_amplitude=10.0,
                             diurnal_amplitude=0.0)
        # Mid-July (day ~196) should be warmer than mid-January (day ~15).
        summer = model.temperature(196 * DAY)
        winter = model.temperature(15 * DAY)
        assert summer > winter
        assert summer <= 20.0 + 1e-6
        assert winter >= 0.0 - 1e-6

    def test_diurnal_peak_afternoon(self):
        model = AmbientModel(mean=10.0, seasonal_amplitude=0.0,
                             diurnal_amplitude=5.0)
        afternoon = model.temperature(14 * 3600.0)
        night = model.temperature(2 * 3600.0)
        assert afternoon > night

    def test_is_summer_window(self):
        model = AmbientModel()
        assert model.is_summer(180 * DAY)  # late June
        assert not model.is_summer(15 * DAY)  # January
        assert not model.is_summer(300 * DAY)  # late October

    def test_noise_requires_rng(self):
        rng = RngStreams(1).stream("t")
        noisy = AmbientModel(noise_std=1.0, rng=rng)
        values = {noisy.temperature(0.0) for _ in range(5)}
        assert len(values) > 1  # noise varies draw to draw

    def test_deterministic_without_noise(self):
        model = AmbientModel()
        assert model.temperature(12345.0) == model.temperature(12345.0)


class TestCoolingModel:
    def test_cop_bounds(self):
        model = CoolingModel(cop_max=8.0, cop_min=2.0,
                             free_cooling_below=5.0, design_ambient=35.0)
        assert model.cop(0.0) == 8.0
        assert model.cop(40.0) == 2.0
        mid = model.cop(20.0)
        assert 2.0 < mid < 8.0

    def test_cop_monotone_decreasing(self):
        model = CoolingModel()
        temps = [0, 10, 20, 30, 40]
        cops = [model.cop(t) for t in temps]
        assert cops == sorted(cops, reverse=True)

    def test_overhead_and_pue(self):
        model = CoolingModel(cop_max=4.0, cop_min=4.0,
                             free_cooling_below=0.0, design_ambient=50.0)
        assert model.overhead_watts(1000.0, 20.0) == pytest.approx(250.0)
        assert model.pue(20.0) == pytest.approx(1.25)

    def test_zero_load_zero_overhead(self):
        assert CoolingModel().overhead_watts(0.0, 30.0) == 0.0

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            CoolingModel(cop_max=2.0, cop_min=4.0)
        with pytest.raises(ValueError):
            CoolingModel(free_cooling_below=30.0, design_ambient=20.0)


class TestVariability:
    def test_apply_sets_factors(self):
        nodes = [Node(i) for i in range(100)]
        VariabilityModel(std=0.05).apply(nodes, RngStreams(3).stream("v"))
        factors = [n.variability for n in nodes]
        assert min(factors) < 1.0 < max(factors)
        assert all(0.75 <= f <= 1.25 for f in factors)

    def test_clip_respected(self):
        nodes = [Node(i) for i in range(200)]
        VariabilityModel(std=0.5, clip=0.1).apply(nodes, RngStreams(3).stream("v"))
        assert all(0.9 <= n.variability <= 1.1 for n in nodes)

    def test_spread(self):
        nodes = [Node(i) for i in range(10)]
        assert VariabilityModel.spread(nodes) == pytest.approx(1.0)
        nodes[0].variability = 1.2
        assert VariabilityModel.spread(nodes) == pytest.approx(1.2)

    def test_deterministic(self):
        a = [Node(i) for i in range(10)]
        b = [Node(i) for i in range(10)]
        VariabilityModel().apply(a, RngStreams(1).stream("v"))
        VariabilityModel().apply(b, RngStreams(1).stream("v"))
        assert [n.variability for n in a] == [n.variability for n in b]

    def test_empty_ok(self):
        VariabilityModel().apply([], RngStreams(1).stream("v"))
        assert VariabilityModel.spread([]) == 1.0
