"""Per-center workload presets.

Survey Q3 asked each center for its workload envelope: typical job
counts and sizes, backlog, throughput, and the capability/capacity
split of the scheduling goal (Q3d).  These presets encode a plausible
envelope per center, scaled so that the preset is usable on a
simulated machine of a few hundred to a few thousand nodes.  They are
*calibrated shapes*, not measured traces — production traces are not
public, which is exactly the substitution DESIGN.md documents.
"""

from __future__ import annotations

from typing import Dict

from ..errors import SurveyError
from ..units import DAY, HOUR
from .generator import WorkloadSpec

#: Q3-style envelopes.  Keys are survey center slugs.
CENTER_WORKLOADS: Dict[str, dict] = {
    # RIKEN (K computer): capability machine; monthly large-job days.
    "riken": dict(
        arrival_rate=30.0 / HOUR,
        capability_fraction=0.35,
        min_nodes=1,
        max_nodes=512,
        mean_work=4.0 * HOUR,
        work_sigma=1.1,
        diurnal=False,
    ),
    # Tokyo Tech (TSUBAME): university capacity machine, many small jobs,
    # strong diurnal pattern, virtualized node splitting.
    "tokyotech": dict(
        arrival_rate=120.0 / HOUR,
        capability_fraction=0.03,
        min_nodes=1,
        max_nodes=128,
        mean_work=1.0 * HOUR,
        work_sigma=1.3,
        diurnal=True,
    ),
    # CEA (Curie): mixed defence/research workload.
    "cea": dict(
        arrival_rate=60.0 / HOUR,
        capability_fraction=0.15,
        min_nodes=1,
        max_nodes=256,
        mean_work=3.0 * HOUR,
        work_sigma=1.0,
        diurnal=False,
    ),
    # KAUST (Shaheen XC40): large capability share.
    "kaust": dict(
        arrival_rate=40.0 / HOUR,
        capability_fraction=0.25,
        min_nodes=1,
        max_nodes=512,
        mean_work=4.0 * HOUR,
        work_sigma=1.0,
        diurnal=False,
    ),
    # LRZ (SuperMUC): broad academic mix; the energy-tag system needs
    # repeated runs of the same applications.
    "lrz": dict(
        arrival_rate=80.0 / HOUR,
        capability_fraction=0.10,
        min_nodes=1,
        max_nodes=256,
        mean_work=2.0 * HOUR,
        work_sigma=1.2,
        diurnal=True,
    ),
    # STFC (small 360-node experimental system + production clusters).
    "stfc": dict(
        arrival_rate=50.0 / HOUR,
        capability_fraction=0.05,
        min_nodes=1,
        max_nodes=64,
        mean_work=1.5 * HOUR,
        work_sigma=1.2,
        diurnal=True,
    ),
    # Trinity (LANL+Sandia): capability-class weapons science, very
    # large jobs, long runtimes.
    "trinity": dict(
        arrival_rate=20.0 / HOUR,
        capability_fraction=0.45,
        min_nodes=4,
        max_nodes=1024,
        mean_work=8.0 * HOUR,
        work_sigma=0.9,
        diurnal=False,
    ),
    # CINECA (Eurora/Marconi): academic capacity with accelerator mix.
    "cineca": dict(
        arrival_rate=90.0 / HOUR,
        capability_fraction=0.08,
        min_nodes=1,
        max_nodes=128,
        mean_work=1.5 * HOUR,
        work_sigma=1.2,
        diurnal=True,
    ),
    # JCAHPC (Oakforest-PACS): shared U.Tsukuba/U.Tokyo machine.
    "jcahpc": dict(
        arrival_rate=70.0 / HOUR,
        capability_fraction=0.20,
        min_nodes=1,
        max_nodes=512,
        mean_work=2.5 * HOUR,
        work_sigma=1.0,
        diurnal=True,
    ),
}


def center_workload_spec(center: str, duration: float = 2.0 * DAY, **overrides) -> WorkloadSpec:
    """Build the :class:`WorkloadSpec` for a surveyed center.

    *overrides* replace any preset field (e.g. ``max_nodes`` to match a
    smaller simulated machine).
    """
    try:
        params = dict(CENTER_WORKLOADS[center])
    except KeyError:
        raise SurveyError(
            f"unknown center {center!r}; known: {sorted(CENTER_WORKLOADS)}"
        ) from None
    params["duration"] = duration
    params.update(overrides)
    return WorkloadSpec(**params)
