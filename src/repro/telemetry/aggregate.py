"""Hierarchical aggregation: node -> job -> machine -> center.

Turns a flat power trace into the per-level summaries STFC reports
("data center, machine, and job levels").  Works over the structured
trace a simulation produces, so analyses never poke live objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from ..compat import trapezoid
from ..simulator.trace import TraceRecorder
from ..workload.job import Job


@dataclass(frozen=True)
class LevelSummary:
    """Aggregate statistics of one entity at one level."""

    level: str
    entity: str
    samples: int
    mean: float
    peak: float
    total_energy_joules: float


class HierarchicalAggregator:
    """Aggregate power/energy at job, machine and center levels."""

    def __init__(self, trace: TraceRecorder) -> None:
        self.trace = trace

    # ------------------------------------------------------------------
    def machine_summary(self, meter_name: str) -> LevelSummary:
        """Summary of one machine's power.sample series."""
        records = [
            r for r in self.trace.records("power.sample")
            if r.data.get("meter") == meter_name
        ]
        if not records:
            return LevelSummary("machine", meter_name, 0, 0.0, 0.0, 0.0)
        times = np.array([r.time for r in records])
        watts = np.array([r.data["watts"] for r in records])
        energy = float(trapezoid(watts, times)) if len(times) > 1 else 0.0
        return LevelSummary(
            "machine", meter_name, len(records),
            float(watts.mean()), float(watts.max()), energy,
        )

    def job_summaries(self, jobs: Iterable[Job]) -> List[LevelSummary]:
        """Per-job summaries from the jobs' accounted energy."""
        out = []
        for job in jobs:
            run = job.run_time
            if run is None or run <= 0:
                continue
            mean = job.energy_joules / run
            out.append(
                LevelSummary("job", job.job_id, 1, mean, mean, job.energy_joules)
            )
        return out

    def center_summary(self, meter_names: Iterable[str]) -> LevelSummary:
        """Center level: sum of all machine summaries."""
        summaries = [self.machine_summary(name) for name in meter_names]
        present = [s for s in summaries if s.samples > 0]
        if not present:
            return LevelSummary("center", "site", 0, 0.0, 0.0, 0.0)
        return LevelSummary(
            "center",
            "site",
            sum(s.samples for s in present),
            sum(s.mean for s in present),
            sum(s.peak for s in present),
            sum(s.total_energy_joules for s in present),
        )

    def by_user(self, jobs: Iterable[Job]) -> Dict[str, float]:
        """Total accounted energy per user (joules)."""
        totals: Dict[str, float] = {}
        for job in jobs:
            totals[job.user] = totals.get(job.user, 0.0) + job.energy_joules
        return totals
