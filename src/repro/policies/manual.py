"""Scripted administrator actions.

Not every surveyed production capability is automated: CEA "manually
shut[s] down nodes to shift power budget between systems"; JCAHPC has
"manual emergency response, admin sets power cap".  This policy plays
back a script of timestamped admin actions, making manual operations
reproducible parts of a simulation scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..cluster.node import NodeState
from ..core.epa import FunctionalCategory
from ..errors import PolicyError
from ..simulator.events import EventPriority
from .base import Policy


@dataclass(frozen=True)
class AdminAction:
    """One scripted action at an absolute simulated time."""

    time: float
    kind: str  # "shutdown" | "boot" | "set_cap" | "clear_cap" | "custom"
    count: int = 0
    cap_watts: Optional[float] = None
    callback: Optional[Callable[[], None]] = None

    def __post_init__(self) -> None:
        valid = {"shutdown", "boot", "set_cap", "clear_cap", "custom"}
        if self.kind not in valid:
            raise PolicyError(f"unknown admin action kind {self.kind!r}")
        if self.kind == "custom" and self.callback is None:
            raise PolicyError("custom action needs a callback")


class ManualActionPolicy(Policy):
    """Replay a script of administrator actions.

    Actions:

    * ``shutdown`` — power off *count* idle nodes (budget shifting);
    * ``boot`` — power on *count* off nodes;
    * ``set_cap`` — set a per-node cap of ``cap_watts`` machine-wide
      (the JCAHPC emergency knob);
    * ``clear_cap`` — remove all node caps;
    * ``custom`` — invoke an arbitrary callback.
    """

    name = "manual-actions"

    def __init__(self, actions: List[AdminAction]) -> None:
        super().__init__()
        self.actions = sorted(actions, key=lambda a: a.time)
        self.executed: List[AdminAction] = []

    # -- state capture: ``executed`` holds elements of the static
    # ``actions`` script (possibly with uncapturable callbacks), so a
    # checkpoint records indices into the script and restore re-links
    # them against the factory-built copy.
    def __repro_getstate__(self) -> dict:
        index = {id(a): i for i, a in enumerate(self.actions)}
        return {"executed": [index[id(a)] for a in self.executed]}

    def __repro_setstate__(self, state: dict) -> None:
        self.executed = [self.actions[i] for i in state["executed"]]

    def on_attach(self) -> None:
        for action in self.actions:
            self.sim.at(
                action.time,
                self._execute,
                action,
                priority=EventPriority.CONTROL,
                name=f"admin:{action.kind}",
            )

    def _execute(self, action: AdminAction) -> None:
        machine = self.simulation.machine
        rm = self.simulation.rm
        if action.kind == "shutdown":
            idle = sorted(
                machine.nodes_in_state(NodeState.IDLE), key=lambda n: n.node_id
            )
            rm.shutdown_nodes(idle[: action.count])
        elif action.kind == "boot":
            off = sorted(rm.off_nodes(), key=lambda n: n.node_id)
            rm.boot_nodes(off[: action.count])
        elif action.kind == "set_cap":
            rm.set_power_cap(machine.nodes, action.cap_watts)
        elif action.kind == "clear_cap":
            rm.set_power_cap(machine.nodes, None)
        elif action.kind == "custom":
            action.callback()
        self.executed.append(action)

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "manual-admin",
                FunctionalCategory.POWER_CONTROL,
                f"{len(self.actions)} scripted administrator actions",
            )
        ]
