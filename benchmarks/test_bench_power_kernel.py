"""Experiment ``exp-power-kernel``: machine-power accounting at scale.

The tentpole claim of the SoA power rewrite: a whole-machine power
re-sum — what every budget/capping control loop pays per tick — runs
as one numpy kernel over the mirror arrays instead of N Python
``operating_point`` calls, and is ≥10× faster at 16k nodes.  The two
backends are first asserted to agree on the benchmarked machine
itself (on top of the randomized equivalence sweeps in
``tests/test_power_vector.py``).

Also benched here:

* the *wide-job reconfigure* fold — re-capping a 4096-node slice of a
  16k machine dirties those rows only; the fold is one kernel over the
  sorted dirty rows vs a per-node Python loop;
* ``build_context()`` at 64k nodes — the available list and usable
  count come from masks maintained on node state transitions, replacing
  the seed's two O(N) attribute scans per scheduler pass.

Timings land in ``benchmarks/out/BENCH_power.json`` (machine-readable,
uploaded by the CI benchmarks job) plus the usual rendered .txt
artifacts.
"""

from __future__ import annotations

import json
import time

from repro.cluster import NodeState
from repro.core import ClusterSimulation, FcfsScheduler

from .conftest import OUT_DIR, bench_machine, write_artifact


def _best_of(fn, rounds: int = 3) -> float:
    """Best-of-N wall time of one call (first call warms caches)."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return max(best, 1e-9)


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into benchmarks/out/BENCH_power.json."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_power.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def _sim(nodes: int, backend: str) -> ClusterSimulation:
    return ClusterSimulation(
        bench_machine(nodes), FcfsScheduler(), [], power_backend=backend
    )


def test_bench_power_full_resum(benchmark, artifact_dir):
    """Whole-machine power re-sum, scalar vs vector, 16k and 64k."""
    rows = {}
    for n in (16_384, 65_536):
        scalar = _sim(n, "scalar")
        vector = _sim(n, "vector")

        def scalar_resum():
            scalar._power_all_dirty = True
            return scalar.machine_power()

        def vector_resum():
            vector.power_vector.force_resum()
            return vector.machine_power()

        # The backends must agree on the benchmarked machine itself.
        assert abs(scalar_resum() - vector_resum()) <= 1e-6 * n

        t_scalar = _best_of(scalar_resum)
        t_vector = _best_of(vector_resum)
        rows[n] = (t_scalar, t_vector, t_scalar / t_vector)

    # Machine-readable timing for the 16k vector kernel.
    vec16 = _sim(16_384, "vector")

    def bench_target():
        vec16.power_vector.force_resum()
        return vec16.machine_power()

    benchmark.pedantic(bench_target, rounds=5, iterations=1)

    lines = [
        "EXP-POWER-KERNEL — full machine power re-sum\n"
        "(idle machine; one machine_power() with every row stale)\n"
    ]
    for n, (ts, tv, speedup) in rows.items():
        lines.append(
            f"{n:6d} nodes: scalar {ts * 1e3:8.2f} ms"
            f"   vector {tv * 1e3:7.3f} ms   speedup {speedup:7.1f}x"
        )
    write_artifact("exp-power-kernel", "\n".join(lines) + "\n")
    _update_bench_json(
        "full_resum",
        {
            str(n): {
                "scalar_seconds": ts,
                "vector_seconds": tv,
                "speedup": speedup,
            }
            for n, (ts, tv, speedup) in rows.items()
        },
    )

    # The tentpole acceptance bar: >=10x at 16k nodes.
    speedup_16k = rows[16_384][2]
    assert speedup_16k >= 10.0, f"only {speedup_16k:.1f}x at 16k nodes"


def test_bench_power_reconfigure(artifact_dir):
    """Wide-job reconfigure: re-cap a 4096-node slice of a 16k machine,
    then fold the dirty rows into the cached total."""
    n, width = 16_384, 4_096
    results = {}
    for backend in ("scalar", "vector"):
        csim = _sim(n, backend)
        csim.machine_power()  # settle the cache
        slice_nodes = csim.machine.nodes[:width]
        caps = iter([200.0, 300.0] * 50)

        def recap_and_fold():
            csim.rm.set_power_cap(slice_nodes, next(caps))
            return csim.machine_power()

        # Time the fold alone: dirty the rows outside the clock.
        def fold_only():
            return csim.machine_power()

        def dirty_then_time():
            csim.rm.set_power_cap(slice_nodes, next(caps))
            t0 = time.perf_counter()
            fold_only()
            return time.perf_counter() - t0

        recap_and_fold()  # warm
        results[backend] = min(dirty_then_time() for _ in range(3))

    speedup = results["scalar"] / max(results["vector"], 1e-9)
    write_artifact(
        "exp-power-reconfigure",
        "EXP-POWER-RECONFIGURE — dirty-row fold after a wide re-cap\n"
        f"({n} nodes, {width}-node slice re-capped; machine_power() only)\n\n"
        f"scalar fold {results['scalar'] * 1e3:8.2f} ms\n"
        f"vector fold {results['vector'] * 1e3:8.3f} ms\n"
        f"speedup {speedup:10.1f}x\n",
    )
    _update_bench_json(
        "reconfigure_fold",
        {
            "nodes": n,
            "slice": width,
            "scalar_seconds": results["scalar"],
            "vector_seconds": results["vector"],
            "speedup": speedup,
        },
    )
    assert speedup >= 2.0, f"only {speedup:.1f}x on the dirty fold"


def test_bench_context_build(artifact_dir):
    """build_context() on a congested 64k machine vs the seed's scans."""
    n = 65_536
    csim = _sim(n, "vector")
    machine = csim.machine
    # Congest the machine: all but one cabinet-ish worth of nodes busy.
    for node in machine.nodes[: n - 512]:
        node.assign("wide", 0.0)

    def reference_scan():
        # The seed's two O(N) passes per scheduler invocation.
        available = [node for node in machine.nodes if node.is_available]
        usable = sum(
            1 for node in machine.nodes if node.state is not NodeState.DOWN
        )
        return available, usable

    ctx = csim.build_context()
    ref_available, ref_usable = reference_scan()
    assert [a.node_id for a in ctx.available] == [
        r.node_id for r in ref_available
    ]
    assert ctx.usable_node_count == ref_usable

    t_incremental = _best_of(csim.build_context)
    t_reference = _best_of(reference_scan)
    speedup = t_reference / t_incremental

    write_artifact(
        "exp-context-build",
        "EXP-CONTEXT-BUILD — scheduler context snapshot cost\n"
        f"({n} nodes, 512 idle; one build_context() call)\n\n"
        f"seed O(N) scans {t_reference * 1e3:8.2f} ms\n"
        f"incremental     {t_incremental * 1e3:8.3f} ms\n"
        f"speedup {speedup:15.1f}x\n",
    )
    _update_bench_json(
        "context_build",
        {
            "nodes": n,
            "idle": 512,
            "reference_seconds": t_reference,
            "incremental_seconds": t_incremental,
            "speedup": speedup,
        },
    )
    assert speedup >= 10.0, f"only {speedup:.1f}x over the seed scans"
