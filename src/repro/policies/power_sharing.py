"""Dynamic power sharing — Ellsworth et al. (SC'15, [17]).

Under a fixed machine budget, a *uniform* per-node cap wastes watts:
memory-bound jobs never reach their cap while compute-bound jobs are
throttled.  Ellsworth's scheme periodically re-divides the budget:
each node gets at least a floor, and the surplus is redistributed
proportionally to measured demand (what each node would draw
uncapped), optionally weighted by job priority ("give more power to
the nodes which run critical jobs").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..cluster.node import NodeState
from ..core.epa import FunctionalCategory
from ..errors import PolicyError
from ..units import check_positive
from .base import Policy


class DynamicPowerSharingPolicy(Policy):
    """Periodically redistribute a machine power budget across nodes.

    Parameters
    ----------
    budget_watts:
        Total budget to divide among powered nodes.
    check_interval:
        Redistribution period, seconds.
    priority_weight:
        Extra demand weight per unit of job priority (0 disables
        priority awareness).
    """

    name = "dynamic-power-sharing"

    def __init__(
        self,
        budget_watts: float,
        check_interval: float = 300.0,
        priority_weight: float = 0.0,
    ) -> None:
        super().__init__()
        self.budget_watts = check_positive("budget_watts", budget_watts)
        self.control_interval = check_positive("check_interval", check_interval)
        self.priority_weight = float(priority_weight)
        self.redistributions = 0

    def on_attach(self) -> None:
        machine = self.simulation.machine
        floor = sum(n.cap_floor for n in machine.nodes)
        if self.budget_watts < floor:
            raise PolicyError(
                f"budget {self.budget_watts:.0f} W below the machine's "
                f"idle floor {floor:.0f} W"
            )
        self.on_tick(self.sim.now)

    # ------------------------------------------------------------------
    def _node_terms(self) -> Dict[int, Tuple[float, float]]:
        """Per powered node: (guaranteed base watts, extra demand).

        The base is what the node draws that DVFS cannot remove: idle
        power for non-busy nodes, minimum-frequency power for busy
        ones.  The extra demand is the gap from the base to the
        uncapped draw, weighted by job priority.
        """
        machine = self.simulation.machine
        model = self.simulation.power_model
        terms: Dict[int, Tuple[float, float]] = {}
        for node in machine.nodes:
            if not node.is_on:
                continue
            if node.state is NodeState.BUSY:
                execution = self.simulation.execution_on(node.node_id)
                job = execution.job if execution is not None else None
                intensity = job.mean_power_intensity if job else 1.0
                f_ratio_min = node.min_frequency / node.max_frequency
                base = model.power_at_ratio(node, f_ratio_min, intensity)
                uncapped = model.power_at_ratio(node, 1.0, intensity)
                weight = 1.0
                if job is not None and self.priority_weight > 0.0:
                    weight += self.priority_weight * max(0, job.priority)
                terms[node.node_id] = (base, max(0.0, uncapped - base) * weight)
            else:
                terms[node.node_id] = (node.cap_floor, 0.0)
        return terms

    def redistribute(self, now: float) -> None:
        """Re-divide the budget across powered nodes right now."""
        machine = self.simulation.machine
        rm = self.simulation.rm
        terms = self._node_terms()
        if not terms:
            return
        base_total = sum(base for base, _ in terms.values())
        surplus = max(0.0, self.budget_watts - base_total)
        total_demand = sum(demand for _, demand in terms.values())

        for nid, (base, demand) in terms.items():
            node = machine.node(nid)
            if total_demand > 0:
                share = surplus * demand / total_demand
            else:
                share = surplus / len(terms)
            cap = min(base + share, node.effective_max_power)
            cap = max(cap, node.cap_floor)
            rm.set_power_cap([node], cap)
        self.redistributions += 1

    def on_tick(self, now: float) -> None:
        self.redistribute(now)

    def on_job_start(self, job, now: float) -> None:
        # Scheduler-integrated redistribution: caps follow the running
        # set immediately, not only at the next periodic tick.
        self.redistribute(now)

    def on_job_end(self, job, now: float) -> None:
        self.redistribute(now)

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "power-sharing",
                FunctionalCategory.POWER_CONTROL,
                f"redistribute {self.budget_watts / 1e3:.0f} kW budget "
                f"by demand every {self.control_interval:.0f}s",
            )
        ]
