"""Tests for the PDU/chiller facility model (CEA layout logic)."""

import pytest

from repro.cluster.facility import (
    Chiller,
    Facility,
    MaintenanceWindow,
    PowerDistributionUnit,
)
from repro.errors import ClusterError


@pytest.fixture
def facility():
    pdus = [
        PowerDistributionUnit("pdu0", 10_000, [0, 1, 2, 3]),
        PowerDistributionUnit("pdu1", 10_000, [4, 5, 6, 7]),
    ]
    chillers = [Chiller("chiller0", 30_000, ["pdu0", "pdu1"])]
    return Facility(50_000, pdus=pdus, chillers=chillers)


class TestDependencyMap:
    def test_pdu_of(self, facility):
        assert facility.pdu_of(0) == "pdu0"
        assert facility.pdu_of(5) == "pdu1"
        assert facility.pdu_of(99) is None

    def test_chiller_of(self, facility):
        assert facility.chiller_of(0) == "chiller0"
        assert facility.chiller_of(7) == "chiller0"

    def test_dependencies_of(self, facility):
        assert facility.dependencies_of(0) == {"pdu0", "chiller0"}
        assert facility.dependencies_of(99) == set()

    def test_nodes_of_component(self, facility):
        assert facility.nodes_of_component("pdu0") == {0, 1, 2, 3}
        assert facility.nodes_of_component("chiller0") == set(range(8))
        with pytest.raises(ClusterError):
            facility.nodes_of_component("nothing")

    def test_node_in_two_pdus_rejected(self):
        pdus = [
            PowerDistributionUnit("a", 1000, [0, 1]),
            PowerDistributionUnit("b", 1000, [1, 2]),
        ]
        with pytest.raises(ClusterError):
            Facility(5000, pdus=pdus)

    def test_chiller_unknown_pdu_rejected(self):
        with pytest.raises(ClusterError):
            Facility(
                5000,
                pdus=[PowerDistributionUnit("a", 1000, [0])],
                chillers=[Chiller("c", 1000, ["nope"])],
            )


class TestMaintenance:
    def test_window_activity(self):
        window = MaintenanceWindow("pdu0", 100.0, 200.0)
        assert not window.active_at(99.0)
        assert window.active_at(100.0)
        assert window.active_at(199.9)
        assert not window.active_at(200.0)

    def test_nodes_under_maintenance_now(self, facility):
        facility.add_maintenance(MaintenanceWindow("pdu0", 100.0, 200.0))
        assert facility.nodes_under_maintenance(50.0) == set()
        assert facility.nodes_under_maintenance(150.0) == {0, 1, 2, 3}
        assert facility.nodes_under_maintenance(250.0) == set()

    def test_horizon_sees_upcoming_window(self, facility):
        facility.add_maintenance(MaintenanceWindow("chiller0", 100.0, 200.0))
        # At t=50 with a 100 s horizon the window is visible.
        assert facility.nodes_under_maintenance(50.0, horizon=100.0) == set(range(8))
        # With no horizon it is not.
        assert facility.nodes_under_maintenance(50.0) == set()

    def test_unknown_component_rejected(self, facility):
        with pytest.raises(ClusterError):
            facility.add_maintenance(MaintenanceWindow("nope", 0.0, 1.0))

    def test_inverted_window_rejected(self, facility):
        with pytest.raises(ClusterError):
            facility.add_maintenance(MaintenanceWindow("pdu0", 10.0, 5.0))
