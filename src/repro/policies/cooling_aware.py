"""Cooling-efficiency-aware job delaying — LRZ's research line.

Table I, LRZ research: "Linking job scheduler with IT infrastructure +
cooling; scheduler may delay jobs when IT infrastructure is
particularly inefficient."  The instantaneous PUE varies with ambient
temperature (free cooling at night/winter, chillers at the afternoon
peak); shifting deferrable work to efficient hours saves *facility*
energy without touching IT energy.

The policy vetoes job starts while the PUE is above a threshold,
bounded by a per-job maximum delay so nothing starves.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.epa import FunctionalCategory
from ..errors import PolicyError
from ..power.pue import FacilityPowerModel
from ..units import check_non_negative, check_positive
from ..workload.job import Job
from .base import Policy


class CoolingAwarePolicy(Policy):
    """Delay job starts while the facility PUE is poor.

    Parameters
    ----------
    pue_threshold:
        Jobs start freely while the instantaneous PUE is at or below
        this value.
    max_delay:
        A job older than this (since submission) is admitted
        regardless — the efficiency shift must not become starvation.
    """

    name = "cooling-aware"

    def __init__(
        self,
        pue_threshold: float = 1.25,
        max_delay: float = 8.0 * 3600.0,
    ) -> None:
        super().__init__()
        self.pue_threshold = check_positive("pue_threshold", pue_threshold)
        self.max_delay = check_non_negative("max_delay", max_delay)
        self.delayed_passes = 0
        self._facility_model = None

    def on_attach(self) -> None:
        if self.simulation.site is None:
            raise PolicyError("cooling-aware policy needs a site (thermal model)")
        self._facility_model = FacilityPowerModel(self.simulation.site)

    def admit(self, job: Job, now: float) -> bool:
        if now - job.submit_time >= self.max_delay:
            return True
        if self._facility_model.efficient_now(now, self.pue_threshold):
            return True
        self.delayed_passes += 1
        return False

    def current_pue(self, now: float) -> float:
        """The instantaneous PUE the policy is reacting to."""
        return self._facility_model.pue(now)

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "pue-monitor",
                FunctionalCategory.POWER_MONITORING,
                "instantaneous facility PUE from ambient + cooling model",
            ),
            (
                "cooling-aware-delay",
                FunctionalCategory.RESOURCE_CONTROL,
                f"delay starts while PUE > {self.pue_threshold:.2f} "
                f"(max {self.max_delay / 3600:.0f}h)",
            ),
        ]
