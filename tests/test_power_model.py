"""Tests for the node power/performance model."""

import pytest

from repro.cluster import Node, NodeState
from repro.errors import ConfigurationError
from repro.power import NodePowerModel


@pytest.fixture
def node():
    return Node(0, idle_power=100.0, max_power=300.0,
                max_frequency=2.0e9, min_frequency=1.0e9)


class TestStatePower:
    def test_off_draws_off_power(self, node, power_model):
        node.transition(NodeState.SHUTTING_DOWN, 0.0)
        node.transition(NodeState.OFF, 1.0)
        sample = power_model.operating_point(node)
        assert sample.watts == node.off_power
        assert sample.speed == 0.0

    def test_idle_draws_idle_power(self, node, power_model):
        assert power_model.operating_point(node).watts == 100.0

    def test_booting_draws_boot_power(self, node, power_model):
        node.transition(NodeState.SHUTTING_DOWN, 0.0)
        node.transition(NodeState.OFF, 1.0)
        node.transition(NodeState.BOOTING, 2.0)
        watts = power_model.operating_point(node).watts
        assert watts == pytest.approx(node.off_power + 0.6 * 300.0)

    def test_busy_full_tilt(self, node, power_model):
        node.assign("j", 0.0)
        sample = power_model.operating_point(node, utilization=1.0, sensitivity=1.0)
        assert sample.watts == pytest.approx(300.0)
        assert sample.speed == pytest.approx(1.0)
        assert not sample.cap_violated

    def test_busy_scales_with_utilization(self, node, power_model):
        node.assign("j", 0.0)
        half = power_model.operating_point(node, utilization=0.5).watts
        assert half == pytest.approx(100.0 + 0.5 * 200.0)

    def test_variability_scales_dynamic_part(self, node, power_model):
        node.variability = 1.1
        node.assign("j", 0.0)
        watts = power_model.operating_point(node, utilization=1.0).watts
        assert watts == pytest.approx(100.0 + 220.0)


class TestDvfsResponse:
    def test_lower_frequency_lower_power(self, node, power_model):
        node.assign("j", 0.0)
        node.set_frequency(1.0e9)  # half of max
        sample = power_model.operating_point(node, 1.0, 1.0)
        # dynamic = 200 * (0.5)^2 = 50
        assert sample.watts == pytest.approx(150.0)
        assert sample.speed == pytest.approx(0.5)

    def test_insensitive_phase_keeps_speed(self, node, power_model):
        node.assign("j", 0.0)
        node.set_frequency(1.0e9)
        sample = power_model.operating_point(node, 1.0, sensitivity=0.0)
        assert sample.speed == pytest.approx(1.0)

    def test_alpha_controls_curvature(self, node):
        node.assign("j", 0.0)
        node.set_frequency(1.0e9)
        linear = NodePowerModel(alpha=1.0).operating_point(node, 1.0).watts
        cubic = NodePowerModel(alpha=3.0).operating_point(node, 1.0).watts
        assert cubic < linear  # higher alpha = deeper power cut at low f

    def test_alpha_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            NodePowerModel(alpha=0.0)


class TestCapping:
    def test_cap_enforced_by_frequency_clamp(self, node, power_model):
        node.assign("j", 0.0)
        node.set_power_cap(200.0)
        sample = power_model.operating_point(node, 1.0, 1.0)
        assert sample.watts <= 200.0 + 1e-9
        assert sample.speed < 1.0
        assert not sample.cap_violated

    def test_cap_above_draw_is_inactive(self, node, power_model):
        node.assign("j", 0.0)
        node.set_power_cap(290.0)
        sample = power_model.operating_point(node, utilization=0.3)
        assert sample.frequency_ratio == pytest.approx(1.0)

    def test_unreachable_cap_flags_violation(self, node, power_model):
        node.assign("j", 0.0)
        node.set_power_cap(110.0)  # needs f below f_min
        sample = power_model.operating_point(node, 1.0, 1.0)
        assert sample.cap_violated
        assert sample.watts > 110.0

    def test_dvfs_setting_and_cap_compose(self, node, power_model):
        node.assign("j", 0.0)
        node.set_frequency(1.2e9)
        node.set_power_cap(290.0)  # cap looser than the DVFS setting
        sample = power_model.operating_point(node, 1.0, 1.0)
        assert sample.frequency_ratio == pytest.approx(0.6)


class TestHelpers:
    def test_frequency_for_cap_inverts_power(self, node, power_model):
        freq = power_model.frequency_for_cap(node, 200.0, utilization=1.0)
        ratio = freq / node.max_frequency
        watts = power_model.power_at_ratio(node, ratio, 1.0)
        assert watts == pytest.approx(200.0, rel=1e-6)

    def test_frequency_for_cap_clamps_to_range(self, node, power_model):
        # Cap below idle power: floor frequency.
        assert power_model.frequency_for_cap(node, 50.0) == node.min_frequency
        # Zero-utilization job under a sub-idle cap: still the floor.
        assert power_model.frequency_for_cap(node, 50.0, 0.0) == node.min_frequency
        # Idle-only draw with a generous cap: ceiling frequency.
        assert power_model.frequency_for_cap(node, 200.0, 0.0) == node.max_frequency
        # Enormous cap: ceiling frequency.
        assert power_model.frequency_for_cap(node, 1e9, 1.0) == node.max_frequency

    def test_speed_at_ratio_bounds(self, power_model):
        assert power_model.speed_at_ratio(1.0, 1.0) == pytest.approx(1.0)
        assert power_model.speed_at_ratio(0.5, 1.0) == pytest.approx(0.5)
        assert power_model.speed_at_ratio(0.5, 0.0) == pytest.approx(1.0)
        assert power_model.speed_at_ratio(0.0, 1.0) > 0.0  # never zero

    def test_power_monotone_in_frequency(self, node, power_model):
        node.assign("j", 0.0)
        ratios = [0.5, 0.6, 0.8, 1.0]
        powers = [power_model.power_at_ratio(node, r, 1.0) for r in ratios]
        assert powers == sorted(powers)
