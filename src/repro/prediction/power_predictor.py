"""Per-job power prediction.

Two predictor families from the survey's related work:

* :class:`TagHistoryPredictor` — "application's tag, historical data"
  ([4], [40]): remember the measured per-node power of finished jobs
  keyed by tag, fall back tag -> app -> global mean;
* :class:`LinearPowerPredictor` — "machine learning techniques and job
  submission information" ([9], [41]): online ridge regression of
  per-node power on submission features.

Both share the interface the scheduling policies consume:
``predict(job) -> total watts`` and ``observe(job, measured)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import PredictionError
from ..workload.job import Job
from .features import job_features


class TagHistoryPredictor:
    """History averaging keyed by tag, with app and global fallbacks.

    Parameters
    ----------
    default_per_node_watts:
        Cold-start estimate used before any observation (set it to the
        machine's nominal busy power per node).
    ewma:
        Exponential weight of the newest observation (1.0 = last value
        wins, small = long memory).
    """

    def __init__(self, default_per_node_watts: float, ewma: float = 0.3) -> None:
        if not (0.0 < ewma <= 1.0):
            raise PredictionError(f"ewma must be in (0,1], got {ewma}")
        self.default = float(default_per_node_watts)
        self.ewma = float(ewma)
        self._by_tag: Dict[str, float] = {}
        self._by_app: Dict[str, float] = {}
        self._global: Optional[float] = None
        self.observations = 0

    # ------------------------------------------------------------------
    def predict_per_node(self, job: Job) -> float:
        """Predicted per-node power, watts."""
        tag = job.tag or job.app_name
        if tag in self._by_tag:
            return self._by_tag[tag]
        if job.app_name in self._by_app:
            return self._by_app[job.app_name]
        if self._global is not None:
            return self._global
        return self.default

    def predict(self, job: Job) -> float:
        """Predicted total job power, watts."""
        return job.nodes * self.predict_per_node(job)

    def observe(self, job: Job, measured_total_watts: float) -> None:
        """Feed back a finished job's measured average power."""
        if job.nodes <= 0:
            return
        per_node = measured_total_watts / job.nodes
        tag = job.tag or job.app_name
        for store, key in ((self._by_tag, tag), (self._by_app, job.app_name)):
            old = store.get(key)
            store[key] = per_node if old is None else (
                (1 - self.ewma) * old + self.ewma * per_node
            )
        self._global = per_node if self._global is None else (
            (1 - self.ewma) * self._global + self.ewma * per_node
        )
        self.observations += 1


class LinearPowerPredictor:
    """Online ridge regression of per-node power on submission features.

    Refits (closed form, numpy) every *refit_every* observations; until
    the first fit it behaves like the provided fallback (or a constant).
    """

    def __init__(
        self,
        default_per_node_watts: float,
        ridge: float = 1.0,
        refit_every: int = 25,
        max_history: int = 5000,
    ) -> None:
        if ridge < 0:
            raise PredictionError("ridge must be >= 0")
        if refit_every < 1:
            raise PredictionError("refit_every must be >= 1")
        self.default = float(default_per_node_watts)
        self.ridge = float(ridge)
        self.refit_every = int(refit_every)
        self.max_history = int(max_history)
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self.coef: Optional[np.ndarray] = None
        self.observations = 0

    def predict_per_node(self, job: Job) -> float:
        """Predicted per-node power, watts (clipped to be positive)."""
        if self.coef is None:
            return self.default
        value = float(job_features(job) @ self.coef)
        return max(1.0, value)

    def predict(self, job: Job) -> float:
        """Predicted total job power, watts."""
        return job.nodes * self.predict_per_node(job)

    def observe(self, job: Job, measured_total_watts: float) -> None:
        """Record one observation; refit on schedule."""
        if job.nodes <= 0:
            return
        self._X.append(job_features(job))
        self._y.append(measured_total_watts / job.nodes)
        if len(self._X) > self.max_history:
            self._X = self._X[-self.max_history :]
            self._y = self._y[-self.max_history :]
        self.observations += 1
        if self.observations % self.refit_every == 0:
            self._fit()

    def _fit(self) -> None:
        X = np.vstack(self._X)
        y = np.asarray(self._y)
        n_features = X.shape[1]
        A = X.T @ X + self.ridge * np.eye(n_features)
        b = X.T @ y
        self.coef = np.linalg.solve(A, b)


@dataclass(frozen=True)
class PredictorMetrics:
    """Accuracy summary of a predictor over a labelled set."""

    count: int
    mape: float
    rmse_watts: float
    mean_bias_watts: float


def evaluate_predictor(
    predictor,
    labelled: Iterable[Tuple[Job, float]],
) -> PredictorMetrics:
    """Score ``predictor`` against (job, measured_total_watts) pairs.

    Does not feed observations back; evaluate-then-observe loops are
    the caller's responsibility (so online and offline evaluation are
    both expressible).
    """
    errors = []
    preds = []
    actuals = []
    for job, measured in labelled:
        pred = predictor.predict(job)
        preds.append(pred)
        actuals.append(measured)
        if measured > 0:
            errors.append(abs(pred - measured) / measured)
    if not actuals:
        return PredictorMetrics(0, 0.0, 0.0, 0.0)
    preds_a = np.asarray(preds)
    actual_a = np.asarray(actuals)
    return PredictorMetrics(
        count=len(actuals),
        mape=float(np.mean(errors)) if errors else 0.0,
        rmse_watts=float(np.sqrt(np.mean((preds_a - actual_a) ** 2))),
        mean_bias_watts=float(np.mean(preds_a - actual_a)),
    )
