"""Experiment runner: evaluate policy variants on matched workloads.

Runs each named variant on an *identically generated* workload and
fresh machine (common random numbers — the standard variance-reduction
technique for simulation comparisons), then tabulates the metrics the
benches print.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.metrics import MetricsReport
from ..core.simulation import ClusterSimulation, SimulationResult
from .executor import ExperimentExecutor, VariantSpec


@dataclass
class Variant:
    """One experimental arm.

    ``build`` must return a fresh, fully wired
    :class:`ClusterSimulation` — including its own machine and its own
    copy of the workload (job objects are mutated by runs) — or a
    wrapper exposing one through a ``.simulation`` attribute (e.g.
    :class:`~repro.centers.base.CenterBuild`).  For parallel runs
    (``run_all(workers > 1)``) it must additionally be picklable: a
    module-level function or :func:`functools.partial` of one.
    """

    name: str
    build: Callable[[], ClusterSimulation]
    notes: str = ""


@dataclass
class VariantResult:
    """Result of one arm.

    ``result`` is the full :class:`SimulationResult` when the arm ran
    in-process (the sequential path); runs delegated to a process pool
    or served from the on-disk cache carry only the metrics, and
    ``result`` is ``None``.
    """

    name: str
    metrics: MetricsReport
    result: Optional[SimulationResult]
    notes: str = ""


class ExperimentRunner:
    """Run a list of variants and collect comparable results."""

    def __init__(self, variants: List[Variant]) -> None:
        names = [v.name for v in variants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variant names: {names}")
        self.variants = variants
        self.results: List[VariantResult] = []

    def run_all(
        self,
        until: Optional[float] = None,
        workers: int = 1,
        cache_dir: Optional[pathlib.Path] = None,
        executor: Optional[ExperimentExecutor] = None,
    ) -> List[VariantResult]:
        """Execute every variant; returns (and stores) the results.

        With the defaults (``workers=1``, no cache, no executor) every
        variant runs sequentially in-process, exactly as before, and
        each :class:`VariantResult` carries the full
        :class:`~repro.core.simulation.SimulationResult`.

        With ``workers > 1``, a ``cache_dir``, or an explicit
        *executor*, execution is delegated to
        :class:`~repro.analysis.executor.ExperimentExecutor` — variant
        ``build`` callables must then be picklable (module-level
        functions or partials) for multi-process runs, result ordering
        still matches the variant list, and ``VariantResult.result``
        is ``None`` (metrics only cross the process/cache boundary).
        """
        if executor is None and workers == 1 and cache_dir is None:
            self.results = []
            for variant in self.variants:
                built = variant.build()
                # Accept builders returning a wrapper with a
                # .simulation attribute (e.g. centers.CenterBuild),
                # mirroring the executor's worker-side convention.
                simulation = getattr(built, "simulation", built)
                result = simulation.run(until=until)
                self.results.append(
                    VariantResult(variant.name, result.metrics, result, variant.notes)
                )
            return self.results

        if executor is None:
            executor = ExperimentExecutor(
                workers=workers, until=until, cache_dir=cache_dir
            )
        specs = [
            VariantSpec(name=v.name, build=v.build, notes=v.notes)
            for v in self.variants
        ]
        records = executor.run(specs)
        self.results = [
            VariantResult(rec.variant, rec.metrics_report(), None, rec.notes)
            for rec in records
        ]
        return self.results

    def metric_table(self, keys: List[str]) -> Dict[str, Dict[str, float]]:
        """variant -> {metric -> value} for the chosen metric keys."""
        table: Dict[str, Dict[str, float]] = {}
        for res in self.results:
            flat = res.metrics.as_dict()
            table[res.name] = {k: flat.get(k, float("nan")) for k in keys}
        return table

    def best_by(self, key: str, minimize: bool = True) -> VariantResult:
        """The variant with the best value of one metric.

        Variants missing the metric are never selected: the sentinel
        is ``+inf`` when minimizing and ``-inf`` when maximizing.
        """
        if not self.results:
            raise ValueError("run_all() first")
        chooser = min if minimize else max
        sentinel = float("inf") if minimize else float("-inf")
        return chooser(self.results, key=lambda r: r.metrics.as_dict().get(key, sentinel))
