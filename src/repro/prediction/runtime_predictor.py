"""Runtime prediction from user estimates.

Mu'alem & Feitelson [35] established that user walltime requests
over-estimate real runtimes by large, user-specific factors.  The
standard correction — learn each user's historical (actual/requested)
ratio and scale their requests — improves backfilling and gives
energy predictors a better runtime term (energy = power x time).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import PredictionError
from ..workload.job import Job


class UserRuntimePredictor:
    """Per-user walltime-request correction via EWMA accuracy ratios."""

    def __init__(self, ewma: float = 0.25, floor_ratio: float = 0.01) -> None:
        if not (0.0 < ewma <= 1.0):
            raise PredictionError(f"ewma must be in (0,1], got {ewma}")
        self.ewma = float(ewma)
        self.floor_ratio = float(floor_ratio)
        self._ratio_by_user: Dict[str, float] = {}
        self.observations = 0

    def predict(self, job: Job) -> float:
        """Predicted runtime, seconds (never above the request)."""
        ratio = self._ratio_by_user.get(job.user, 1.0)
        return min(job.walltime_request, max(
            job.walltime_request * ratio,
            job.walltime_request * self.floor_ratio,
        ))

    def observe(self, job: Job) -> None:
        """Learn from a finished job's actual runtime."""
        run = job.run_time
        if run is None or job.walltime_request <= 0:
            return
        ratio = min(1.0, run / job.walltime_request)
        old = self._ratio_by_user.get(job.user)
        self._ratio_by_user[job.user] = ratio if old is None else (
            (1 - self.ewma) * old + self.ewma * ratio
        )
        self.observations += 1

    def ratio_for(self, user: str) -> Optional[float]:
        """The learned accuracy ratio of *user*, if any."""
        return self._ratio_by_user.get(user)
