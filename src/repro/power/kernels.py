"""Optional numba kernel layer for the three hottest engine loops.

The engine's hot paths — the ``machine_watts`` dirty fold, the
earliest-fit window scan in :class:`~repro.core.profile.FreeNodeProfile`
and bulk transition application in
:class:`~repro.power.vector.VectorPowerMirror` — are numpy-vectorized
already; this module adds JIT-compiled twins for deployments that have
numba installed, and *identical-output* numpy fallbacks everywhere else.

Gating contract
---------------
* ``HAVE_NUMBA`` is True only when ``import numba`` succeeds **and**
  the ``REPRO_NO_NUMBA`` environment variable is unset/empty.  The
  env override exists so CI can exercise the fallback path on hosts
  that do have numba.
* Every public function dispatches on ``HAVE_NUMBA`` internally;
  callers never branch.  The ``*_np`` twins stay importable so the
  equivalence tests can pin ``nb == np`` bit-for-bit when numba is
  present.
* Bit-identity discipline: the JIT loops perform the *same float64
  operations in the same order* as the numpy expressions (both resolve
  to the platform libm for ``pow``), and reductions are **never**
  performed inside a kernel — totals go through ``np.sum`` on the
  caller side so pairwise summation order is shared by both paths.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "node_watts",
    "node_watts_np",
    "earliest_fit_index",
    "earliest_fit_index_arr",
    "earliest_fit_index_np",
    "earliest_fit_index_py",
    "apply_transition",
    "apply_transition_np",
    "insert_point",
    "insert_point_np",
    "plan_conservative",
    "plan_conservative_np",
    "plan_conservative_py",
]

try:  # pragma: no cover - exercised only where numba is installed
    if os.environ.get("REPRO_NO_NUMBA"):
        raise ImportError("numba disabled via REPRO_NO_NUMBA")
    from numba import njit  # type: ignore

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default in this image
    HAVE_NUMBA = False

    def njit(*args, **kwargs):  # type: ignore
        """No-op decorator standing in for ``numba.njit``."""
        if args and callable(args[0]):
            return args[0]

        def decorate(func):
            return func

        return decorate


# Small-int state codes, kept in sync with ``vector.STATE_CODES`` (the
# mirror asserts the mapping at import time; see power/vector.py).
_OFF = 0
_DOWN = 1
_BOOTING = 2
_SHUTTING_DOWN = 3
_IDLE = 4
_BUSY = 5


# ----------------------------------------------------------------------
# Kernel 1: per-node watts (the machine_watts dirty-fold inner kernel)
# ----------------------------------------------------------------------
def node_watts_np(
    state: np.ndarray,
    idle: np.ndarray,
    max_p: np.ndarray,
    off_p: np.ndarray,
    var: np.ndarray,
    freq: np.ndarray,
    min_f: np.ndarray,
    max_f: np.ndarray,
    cap: np.ndarray,
    util: np.ndarray,
    alpha: float,
    boot_frac: float,
    shut_frac: float,
) -> np.ndarray:
    """Watts per row — the watts column of
    :meth:`VectorPowerMirror.operating_points`, extracted so the JIT
    twin and the mirror share one reference expression."""
    off = (state == _OFF) | (state == _DOWN)
    boot = state == _BOOTING
    shut = state == _SHUTTING_DOWN
    idle_m = state == _IDLE

    f_set = freq / max_f
    f_min = min_f / max_f
    dyn = (max_p - idle) * var * util

    capped = np.isfinite(cap)
    over = capped & (dyn > 0.0) & (idle + dyn * f_set**alpha > cap)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        f_cap = (
            np.maximum(cap - idle, 0.0) / np.where(dyn > 0.0, dyn, 1.0)
        ) ** (1.0 / alpha)
    f_eff = np.where(over, np.minimum(f_set, f_cap), f_set)
    f_eff = np.where(over & (f_cap < f_min), f_min, f_eff)

    return np.select(
        [off, boot, shut, idle_m],
        [
            off_p,
            off_p + boot_frac * (max_p * var),
            idle * shut_frac,
            idle,
        ],
        default=idle + dyn * f_eff**alpha,
    )


@njit(cache=False)
def _node_watts_nb(
    state, idle, max_p, off_p, var, freq, min_f, max_f, cap, util,
    alpha, boot_frac, shut_frac,
):  # pragma: no cover - compiled only where numba is installed
    n = state.shape[0]
    out = np.empty(n, dtype=np.float64)
    inv_alpha = 1.0 / alpha
    for i in range(n):
        s = state[i]
        if s == _OFF or s == _DOWN:
            out[i] = off_p[i]
        elif s == _BOOTING:
            out[i] = off_p[i] + boot_frac * (max_p[i] * var[i])
        elif s == _SHUTTING_DOWN:
            out[i] = idle[i] * shut_frac
        elif s == _IDLE:
            out[i] = idle[i]
        else:
            # BUSY: same op order as the numpy expression above.
            f_set = freq[i] / max_f[i]
            dyn = (max_p[i] - idle[i]) * var[i] * util[i]
            f_eff = f_set
            c = cap[i]
            if np.isfinite(c) and dyn > 0.0:
                if idle[i] + dyn * f_set**alpha > c:
                    budget = c - idle[i]
                    if budget < 0.0:
                        budget = 0.0
                    f_cap = (budget / dyn) ** inv_alpha
                    f_eff = min(f_set, f_cap)
                    if f_cap < min_f[i] / max_f[i]:
                        f_eff = min_f[i] / max_f[i]
            out[i] = idle[i] + dyn * f_eff**alpha
    return out


def node_watts(
    state: np.ndarray,
    idle: np.ndarray,
    max_p: np.ndarray,
    off_p: np.ndarray,
    var: np.ndarray,
    freq: np.ndarray,
    min_f: np.ndarray,
    max_f: np.ndarray,
    cap: np.ndarray,
    util: np.ndarray,
    alpha: float,
    boot_frac: float,
    shut_frac: float,
) -> np.ndarray:
    """Per-row watts; JIT loop when numba is available, numpy otherwise.

    Callers sum the result themselves (``np.sum`` pairwise order) so
    totals are bit-identical across both paths.
    """
    if HAVE_NUMBA:
        return _node_watts_nb(
            state, idle, max_p, off_p, var, freq, min_f, max_f, cap,
            util, alpha, boot_frac, shut_frac,
        )
    return node_watts_np(
        state, idle, max_p, off_p, var, freq, min_f, max_f, cap, util,
        alpha, boot_frac, shut_frac,
    )


# ----------------------------------------------------------------------
# Kernel 2: earliest-fit window scan over a reserved free-node profile
# ----------------------------------------------------------------------
def earliest_fit_index_py(
    times: Sequence[float],
    free: Sequence[int],
    needed: int,
    duration: float,
) -> int:
    """Reference implementation of the sliding-window-minimum scan:
    index of the earliest breakpoint from which *needed* nodes stay
    free for *duration*, or -1.  Mirrors
    :meth:`FreeNodeProfile.earliest_fit` (non-monotone branch) with a
    ring buffer instead of a deque so the JIT twin is line-for-line."""
    n = len(times)
    win = [0] * n
    head = 0
    tail = 0
    j = 0
    for i in range(n):
        end = times[i] + duration
        while j < n and times[j] < end:
            while tail > head and free[win[tail - 1]] >= free[j]:
                tail -= 1
            win[tail] = j
            tail += 1
            j += 1
        while tail > head and win[head] < i:
            head += 1
        low = free[win[head]] if tail > head else free[i]
        if low >= needed:
            return i
    return -1


@njit(cache=False)
def _earliest_fit_nb(
    times, free, needed, duration
):  # pragma: no cover - compiled only where numba is installed
    n = times.shape[0]
    win = np.empty(n, dtype=np.int64)
    head = 0
    tail = 0
    j = 0
    for i in range(n):
        end = times[i] + duration
        while j < n and times[j] < end:
            while tail > head and free[win[tail - 1]] >= free[j]:
                tail -= 1
            win[tail] = j
            tail += 1
            j += 1
        while tail > head and win[head] < i:
            head += 1
        if tail > head:
            low = free[win[head]]
        else:
            low = free[i]
        if low >= needed:
            return i
    return -1


def earliest_fit_index_np(
    times: np.ndarray,
    free: np.ndarray,
    needed: int,
    duration: float,
) -> int:
    """Skip-scan earliest fit over the free curve.

    For breakpoint *i* the window is ``[i, e_i)`` with ``e_i =
    searchsorted(times, times[i] + duration, 'left')`` — exactly the
    indices the deque walk admits (``times[j] < times[i] + duration``).
    A candidate head *i* is walked forward until its window closes
    (fit: return *i*) or a *bad* index ``j`` (``free[j] < needed``)
    appears.  Window ends are nondecreasing in *i*, so every start in
    ``(i, j]`` still sees ``j`` inside its window and fails with it —
    the scan restarts at ``j + 1``, visiting each index at most twice
    overall.  Empty windows (``duration <= 0``) close before admitting
    any ``j`` and reduce to the head test ``free[i] >= needed``.
    Profiles here are a few hundred breakpoints with early answers, so
    this plain-python walk over ``tolist()`` data beats a vectorized
    formulation (a dozen full-array dispatches per call) by an order
    of magnitude.  Comparisons are on the same float64 values in the
    same order, so the result is identical to
    :func:`earliest_fit_index_py` bit for bit.
    """
    n = int(times.shape[0])
    if n == 0:
        return -1
    t = times.tolist()
    f = free.tolist()
    i = 0
    while i < n:
        if f[i] < needed:
            i += 1
            continue
        end = t[i] + duration
        j = i + 1
        while j < n and t[j] < end:
            if f[j] < needed:
                break
            j += 1
        else:
            return i
        i = j + 1
    return -1


def earliest_fit_index(
    times: Sequence[float],
    free: Sequence[int],
    needed: int,
    duration: float,
) -> int:
    """Dispatching earliest-fit scan; integer counts make the result
    exact, so all three paths are trivially identical."""
    times_arr = np.asarray(times, dtype=np.float64)
    free_arr = np.asarray(free, dtype=np.int64)
    if HAVE_NUMBA:
        return int(
            _earliest_fit_nb(times_arr, free_arr, needed, float(duration))
        )
    return earliest_fit_index_np(times_arr, free_arr, needed, float(duration))


if HAVE_NUMBA:  # pragma: no cover - bound only where numba is installed

    def earliest_fit_index_arr(
        times: np.ndarray,
        free: np.ndarray,
        needed: int,
        duration: float,
    ) -> int:
        """Array-input twin of :func:`earliest_fit_index` for callers
        that already hold float64/int64 arrays (the dispatcher's
        ``asarray`` round-trip is pure overhead at ~400k calls per
        backfill-heavy run)."""
        return int(_earliest_fit_nb(times, free, needed, float(duration)))

else:
    earliest_fit_index_arr = earliest_fit_index_np


# ----------------------------------------------------------------------
# Kernel 3: bulk transition application (SoA scatter)
# ----------------------------------------------------------------------
def apply_transition_np(
    state_code: np.ndarray,
    idle_since: np.ndarray,
    bound_jobs: np.ndarray,
    rows: np.ndarray,
    code: int,
    idle_ts: float,
    bound: int,
) -> None:
    """Scatter one lifecycle transition onto *rows* in place:
    ``state_code[rows] = code``, ``idle_since[rows] = idle_ts`` (NaN
    for non-idle targets) and ``bound_jobs[rows] = bound``."""
    state_code[rows] = code
    idle_since[rows] = idle_ts
    bound_jobs[rows] = bound


@njit(cache=False)
def _apply_transition_nb(
    state_code, idle_since, bound_jobs, rows, code, idle_ts, bound
):  # pragma: no cover - compiled only where numba is installed
    for k in range(rows.shape[0]):
        r = rows[k]
        state_code[r] = code
        idle_since[r] = idle_ts
        bound_jobs[r] = bound


def apply_transition(
    state_code: np.ndarray,
    idle_since: np.ndarray,
    bound_jobs: np.ndarray,
    rows: np.ndarray,
    code: int,
    idle_ts: float,
    bound: int,
) -> None:
    """Dispatching bulk-transition scatter (pure assignments, so both
    paths are exactly identical)."""
    if HAVE_NUMBA:
        _apply_transition_nb(
            state_code, idle_since, bound_jobs, rows,
            np.int8(code), float(idle_ts), np.int32(bound),
        )
        return
    apply_transition_np(
        state_code, idle_since, bound_jobs, rows, code, idle_ts, bound
    )


# ----------------------------------------------------------------------
# Kernel 4: breakpoint insertion shift (FreeNodeProfile._ensure_point)
# ----------------------------------------------------------------------
def insert_point_np(
    times: np.ndarray,
    free: np.ndarray,
    n: int,
    idx: int,
    time: float,
) -> None:
    """Open a gap at *idx* in the first *n* live entries of the profile
    arrays and write the new breakpoint: ``times[idx] = time`` with the
    enclosing segment's count ``free[idx - 1]``.  The caller guarantees
    capacity for ``n + 1`` entries and ``idx >= 1`` (the origin
    breakpoint is never displaced).  The suffix is copied before the
    shifted store — overlapping numpy slice assignment is not
    guaranteed memmove-safe."""
    times[idx + 1:n + 1] = times[idx:n].copy()
    free[idx + 1:n + 1] = free[idx:n].copy()
    times[idx] = time
    free[idx] = free[idx - 1]


@njit(cache=False)
def _insert_point_nb(
    times, free, n, idx, time
):  # pragma: no cover - compiled only where numba is installed
    for k in range(n, idx, -1):
        times[k] = times[k - 1]
        free[k] = free[k - 1]
    times[idx] = time
    free[idx] = free[idx - 1]


def insert_point(
    times: np.ndarray,
    free: np.ndarray,
    n: int,
    idx: int,
    time: float,
) -> None:
    """Dispatching breakpoint insertion (pure moves, so both paths are
    exactly identical)."""
    if HAVE_NUMBA:
        _insert_point_nb(times, free, np.int64(n), np.int64(idx), float(time))
        return
    insert_point_np(times, free, n, idx, time)


# ----------------------------------------------------------------------
# Kernel 5: whole-pass conservative backfill planning
# ----------------------------------------------------------------------
# One call plans the queue slice ``[k0, m)`` against a free-node
# profile held in flat ``(times, free)`` arrays: earliest-fit search,
# tail fallback, start-now test and reservation insertion per job —
# the loop body of ``ConservativeBackfillScheduler.schedule`` with the
# admission hook compiled out (callers only take this path when the
# simulation has zero policies, so the hook is vacuous).
#
# Two queue-level accelerations ride along, both decision-preserving:
#
# * **Saturation early-stop** (``stop_early``): before planning job
#   ``k``, check whether *any* remaining job could start now.  A job
#   can start only if the profile keeps at least its node count free
#   over ``[now, now + walltime)``; the window minimum is antitone in
#   both window length and node count, so the cheapest remaining
#   window — suffix-minimum walltime at suffix-minimum nodes — bounds
#   them all.  When even that fails (or the real free pool is below
#   the suffix-minimum node count), no later job can start and the
#   pass may stop: the reservations it would have placed are
#   pass-local scratch state, invisible outside the scheduler.
# * **Resumability**: the caller may re-enter with ``k0 > 0`` against
#   a profile carried over from the previous pass (the cross-pass
#   cache in ``core/backfill.py``); ``minf`` reports the earliest
#   reservation placed at or after ``now`` so the caller can tell
#   when that carried profile expires.
#
# The caller guarantees array capacity for ``n + 2*(m - k0)`` profile
# breakpoints (each planned job inserts at most two), ``starts_out``
# of length ``m - k0`` and ``resv_out`` of shape ``(m - k0, 3)``.
def plan_conservative_py(
    times: np.ndarray,
    free: np.ndarray,
    n: int,
    nodes_req: Sequence[int],
    wall: Sequence[float],
    sfx_nodes: Sequence[int],
    sfx_wall: Sequence[float],
    k0: int,
    now: float,
    pool_free: int,
    capacity: int,
    monotone: bool,
    stop_early: bool,
    starts_out: np.ndarray,
    resv_out: np.ndarray,
) -> Tuple[int, int, int, float, bool, int, int]:
    """Reference implementation on python lists (bisect + list.insert),
    mirroring :meth:`FreeNodeProfile` semantics op for op.  Returns
    ``(n, planned, pool_free, minf, monotone, n_starts, n_resv)`` and
    writes the planned profile back into ``times``/``free``."""
    t = times[:n].tolist()
    f = free[:n].tolist()
    m = len(nodes_req)
    minf = float("inf")
    n_starts = 0
    n_resv = 0
    k = k0
    while k < m:
        if stop_early:
            smallest = sfx_nodes[k]
            if pool_free < smallest:
                break
            hi = bisect_left(t, now + sfx_wall[k])
            if hi < 1:
                hi = 1
            if min(f[:hi]) < smallest:
                break
        nodes = nodes_req[k]
        dur = wall[k]
        idx_k = k
        k += 1
        if nodes > capacity:
            continue  # can never run; do not reserve
        size = len(t)
        if monotone:
            lo = bisect_left(f, nodes)
            has_fit = lo < size
            start = (t[0] if lo == 0 else t[lo]) if has_fit else 0.0
        else:
            idx = earliest_fit_index_py(t, f, nodes, dur)
            has_fit = idx >= 0
            start = t[idx] if has_fit else 0.0
        if not has_fit:
            # Constant-tail fallback: profile is flat after its last
            # breakpoint (see the scheduler's tail check).
            if f[size - 1] >= nodes:
                start = t[size - 1]
            else:
                continue
        if start <= now and nodes <= pool_free:
            starts_out[n_starts] = idx_k
            n_starts += 1
            pool_free -= nodes
            s = now
        else:
            s = start if start > now else now
            if s < minf:
                minf = s
        e = s + dur
        if e > s:
            lo_i = _ensure_point_list(t, f, s)
            hi_i = _ensure_point_list(t, f, e)
            for i in range(lo_i, hi_i):
                f[i] -= nodes
            monotone = False
        resv_out[n_resv, 0] = s
        resv_out[n_resv, 1] = e
        resv_out[n_resv, 2] = nodes
        n_resv += 1
    n = len(t)
    times[:n] = t
    free[:n] = f
    return n, k, pool_free, minf, monotone, n_starts, n_resv


def _ensure_point_list(t: list, f: list, x: float) -> int:
    """List twin of ``FreeNodeProfile._ensure_point``."""
    idx = bisect_left(t, x)
    if idx < len(t) and t[idx] == x:
        return idx
    t.insert(idx, x)
    f.insert(idx, f[idx - 1])
    return idx


def plan_conservative_np(
    times: np.ndarray,
    free: np.ndarray,
    n: int,
    nodes_req: np.ndarray,
    wall: np.ndarray,
    sfx_nodes: np.ndarray,
    sfx_wall: np.ndarray,
    k0: int,
    now: float,
    pool_free: int,
    capacity: int,
    monotone: bool,
    stop_early: bool,
    starts_out: np.ndarray,
    resv_out: np.ndarray,
) -> Tuple[int, int, int, float, bool, int, int]:
    """Numpy-backed pass planner: profile queries stay on the arrays
    (``searchsorted`` + the skip-scan earliest fit), reservations are
    slice subtractions, breakpoints insert through
    :func:`insert_point_np`.  Job columns are read once via
    ``tolist()`` — per-element numpy indexing would dominate at queue
    depth (the lesson baked into :func:`earliest_fit_index_np`).
    Same comparisons on the same float64 values as the py reference,
    so results are identical bit for bit."""
    nodes_l = nodes_req.tolist()
    wall_l = wall.tolist()
    sfxn = sfx_nodes.tolist()
    sfxw = sfx_wall.tolist()
    m = len(nodes_l)
    minf = float("inf")
    n_starts = 0
    n_resv = 0
    k = k0
    while k < m:
        if stop_early:
            smallest = sfxn[k]
            if pool_free < smallest:
                break
            hi = int(times[:n].searchsorted(now + sfxw[k]))
            if hi < 1:
                hi = 1
            if int(free[:hi].min()) < smallest:
                break
        nodes = nodes_l[k]
        dur = wall_l[k]
        idx_k = k
        k += 1
        if nodes > capacity:
            continue  # can never run; do not reserve
        if monotone:
            lo = int(free[:n].searchsorted(nodes, side="left"))
            has_fit = lo < n
            start = (
                float(times[0]) if lo == 0 else float(times[lo])
            ) if has_fit else 0.0
        else:
            idx = earliest_fit_index_np(times[:n], free[:n], nodes, dur)
            has_fit = idx >= 0
            start = float(times[idx]) if has_fit else 0.0
        if not has_fit:
            if free[n - 1] >= nodes:
                start = float(times[n - 1])
            else:
                continue
        if start <= now and nodes <= pool_free:
            starts_out[n_starts] = idx_k
            n_starts += 1
            pool_free -= nodes
            s = now
        else:
            s = start if start > now else now
            if s < minf:
                minf = s
        e = s + dur
        if e > s:
            lo_i, n = _ensure_point_arr(times, free, n, s)
            hi_i, n = _ensure_point_arr(times, free, n, e)
            free[lo_i:hi_i] -= nodes
            monotone = False
        resv_out[n_resv, 0] = s
        resv_out[n_resv, 1] = e
        resv_out[n_resv, 2] = nodes
        n_resv += 1
    return n, k, pool_free, minf, monotone, n_starts, n_resv


def _ensure_point_arr(
    times: np.ndarray, free: np.ndarray, n: int, x: float
) -> Tuple[int, int]:
    """Array twin of ``FreeNodeProfile._ensure_point``; returns
    ``(index, new_n)``.  Capacity is the caller's guarantee."""
    idx = int(times[:n].searchsorted(x, side="left"))
    if idx < n and times[idx] == x:
        return idx, n
    insert_point_np(times, free, n, idx, x)
    return idx, n + 1


@njit(cache=False)
def _bisect_left_f64_nb(a, n, x):  # pragma: no cover - numba only
    lo = 0
    hi = n
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] < x:
            lo = mid + 1
        else:
            hi = mid
    return lo


@njit(cache=False)
def _bisect_left_i64_nb(a, n, x):  # pragma: no cover - numba only
    lo = 0
    hi = n
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] < x:
            lo = mid + 1
        else:
            hi = mid
    return lo


@njit(cache=False)
def _plan_conservative_nb(
    times, free, n, nodes_req, wall, sfx_nodes, sfx_wall, k0, now,
    pool_free, capacity, monotone, stop_early, starts_out, resv_out,
):  # pragma: no cover - compiled only where numba is installed
    m = nodes_req.shape[0]
    minf = np.inf
    n_starts = 0
    n_resv = 0
    k = k0
    while k < m:
        if stop_early:
            smallest = sfx_nodes[k]
            if pool_free < smallest:
                break
            hi = _bisect_left_f64_nb(times, n, now + sfx_wall[k])
            if hi < 1:
                hi = 1
            low = free[0]
            for i in range(1, hi):
                if free[i] < low:
                    low = free[i]
            if low < smallest:
                break
        nodes = nodes_req[k]
        dur = wall[k]
        idx_k = k
        k += 1
        if nodes > capacity:
            continue
        has_fit = False
        start = 0.0
        if monotone:
            lo = _bisect_left_i64_nb(free, n, nodes)
            if lo < n:
                has_fit = True
                start = times[0] if lo == 0 else times[lo]
        else:
            idx = _earliest_fit_nb(times[:n], free[:n], nodes, dur)
            if idx >= 0:
                has_fit = True
                start = times[idx]
        if not has_fit:
            if free[n - 1] >= nodes:
                start = times[n - 1]
            else:
                continue
        if start <= now and nodes <= pool_free:
            starts_out[n_starts] = idx_k
            n_starts += 1
            pool_free -= nodes
            s = now
        else:
            s = start if start > now else now
            if s < minf:
                minf = s
        e = s + dur
        if e > s:
            lo_i = _bisect_left_f64_nb(times, n, s)
            if not (lo_i < n and times[lo_i] == s):
                _insert_point_nb(times, free, n, lo_i, s)
                n += 1
            hi_i = _bisect_left_f64_nb(times, n, e)
            if not (hi_i < n and times[hi_i] == e):
                _insert_point_nb(times, free, n, hi_i, e)
                n += 1
            for i in range(lo_i, hi_i):
                free[i] -= nodes
            monotone = False
        resv_out[n_resv, 0] = s
        resv_out[n_resv, 1] = e
        resv_out[n_resv, 2] = nodes
        n_resv += 1
    return n, k, pool_free, minf, monotone, n_starts, n_resv


def plan_conservative(
    times: np.ndarray,
    free: np.ndarray,
    n: int,
    nodes_req: np.ndarray,
    wall: np.ndarray,
    sfx_nodes: np.ndarray,
    sfx_wall: np.ndarray,
    k0: int,
    now: float,
    pool_free: int,
    capacity: int,
    monotone: bool,
    stop_early: bool,
    starts_out: np.ndarray,
    resv_out: np.ndarray,
) -> Tuple[int, int, int, float, bool, int, int]:
    """Dispatching whole-pass planner; integer node counts make every
    comparison exact, so all three paths are trivially identical."""
    if HAVE_NUMBA:
        n, planned, pool_free, minf, monotone, n_starts, n_resv = (
            _plan_conservative_nb(
                times, free, np.int64(n), nodes_req, wall, sfx_nodes,
                sfx_wall, np.int64(k0), float(now), np.int64(pool_free),
                np.int64(capacity), bool(monotone), bool(stop_early),
                starts_out, resv_out,
            )
        )
        return (
            int(n), int(planned), int(pool_free), float(minf),
            bool(monotone), int(n_starts), int(n_resv),
        )
    return plan_conservative_np(
        times, free, n, nodes_req, wall, sfx_nodes, sfx_wall, k0, now,
        pool_free, capacity, monotone, stop_early, starts_out, resv_out,
    )
