"""Free-node profile: the scheduler's view of capacity over time.

Backfilling — EASY and conservative alike — reasons about one object:
the *free-node profile*, a step function mapping future time to the
number of simultaneously free nodes, built from running-job release
estimates and already-placed reservations.  The seed implementations
rebuilt and re-scanned that function from a raw delta dict for every
candidate start time, which made conservative backfill roughly
O(P·T³) at queue depth P with T profile breakpoints.

:class:`FreeNodeProfile` keeps the function materialized instead:

* sorted breakpoint times plus the free-node count on each segment,
  so point queries are one ``bisect`` — O(log T);
* earliest-fit search that walks the profile once with a monotone
  sliding-window minimum (O(T) amortized for the general reserved
  profile), collapsing to a single binary search over the cumulative
  release curve — O(log T) — while the profile is still monotone
  (no reservations inserted, the EASY shadow-time case);
* incremental reservation insertion (subtract capacity over
  ``[start, end)``) that touches only the affected segments instead
  of re-deriving the whole profile.

Counts are integers throughout (nodes are indivisible), so profile
arithmetic is exact and decision-for-decision equivalent to the seed
delta-dict implementations (see ``repro.core.reference_backfill`` and
the property tests pinning that equivalence).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Iterable, List, Optional, Tuple

from ..errors import SchedulingError
from ..power import kernels

__all__ = ["FreeNodeProfile"]

#: Breakpoint count above which the non-monotone earliest-fit scan is
#: handed to the JIT kernel (when numba is available).  Below it the
#: list->array conversion costs more than the pure-Python walk saves.
_KERNEL_MIN_POINTS = 64


class FreeNodeProfile:
    """Step function of free-node counts over ``[origin, +inf)``.

    Parameters
    ----------
    origin:
        Time of the first breakpoint (usually the scheduling instant
        ``ctx.now``).  Release events at or before *origin* fold into
        the base count — they raise the whole profile, mirroring how
        the seed scheduler's ``free_at`` summed every delta with
        ``time <= t``.  Pass ``float("-inf")`` to keep sub-``now``
        release times as explicit breakpoints (the EASY shadow walk
        needs them verbatim).
    free:
        Free-node count on the first segment.

    Invariants: ``times`` is strictly increasing with
    ``times[0] == origin``; ``free[i]`` is the count on
    ``[times[i], times[i+1])``, and the final segment extends to
    infinity.
    """

    __slots__ = ("times", "free", "_monotone")

    def __init__(self, origin: float, free: int) -> None:
        self.times: List[float] = [float(origin)]
        self.free: List[int] = [int(free)]
        #: True while only releases (positive steps) were applied; the
        #: profile is then non-decreasing and earliest-fit is a binary
        #: search over the cumulative curve.
        self._monotone = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_releases(
        cls,
        origin: float,
        free_now: int,
        releases: Iterable[Tuple[float, int]],
    ) -> "FreeNodeProfile":
        """Build a profile from ``(time, nodes_released)`` events.

        Equal release times are consolidated into one breakpoint; the
        profile is the cumulative sum, so it starts monotone.
        """
        merged: dict = {}
        base = int(free_now)
        for time, count in releases:
            if count < 0:
                raise SchedulingError(
                    f"release of {count} nodes at t={time}: counts must be >= 0"
                )
            if time <= origin:
                base += count
            else:
                merged[time] = merged.get(time, 0) + count
        profile = cls(origin, base)
        running = base
        for time in sorted(merged):
            running += merged[time]
            profile.times.append(float(time))
            profile.free.append(running)
        return profile

    def add_release(self, time: float, count: int) -> None:
        """Add *count* nodes becoming free at *time* (and ever after)."""
        if count < 0:
            raise SchedulingError(
                f"release of {count} nodes at t={time}: counts must be >= 0"
            )
        if count == 0:
            return
        times, free = self.times, self.free
        if time <= times[0]:
            for i in range(len(free)):
                free[i] += count
            return
        idx = self._ensure_point(time)
        for i in range(idx, len(free)):
            free[i] += count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def tail_time(self) -> float:
        """Time of the last breakpoint (profile is constant after it)."""
        return self.times[-1]

    def free_at(self, time: float) -> int:
        """Free-node count at *time* (``time >= origin``).  O(log T)."""
        idx = bisect_right(self.times, time) - 1
        return self.free[idx] if idx >= 0 else self.free[0]

    def earliest_at_least(self, needed: int, not_before: float) -> Optional[float]:
        """Earliest time the free count reaches *needed*, ignoring how
        long it stays there.  Only valid on a monotone (release-only)
        profile, where reaching the level means holding it forever —
        this is the EASY shadow-time query.  O(log T): a binary search
        over the cumulative release curve (its running minima *are* the
        curve itself while it is non-decreasing).

        Returns ``not_before`` when the level already holds on the
        first segment, the breakpoint time otherwise (which may be in
        the past when stale release estimates are present — callers
        compare against it, they do not schedule at it), and ``None``
        when the level is never reached.
        """
        if not self._monotone:
            raise SchedulingError(
                "earliest_at_least needs a monotone profile; use earliest_fit"
            )
        free = self.free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid] >= needed:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(free):
            return None
        return not_before if lo == 0 else self.times[lo]

    def earliest_fit(self, needed: int, duration: float) -> Optional[float]:
        """Earliest breakpoint from which *needed* nodes stay free for
        *duration*.  Returns ``None`` when no breakpoint qualifies
        (the caller may still check the constant tail segment).

        Monotone profiles short-circuit to :meth:`earliest_at_least`.
        The general (reserved) profile is scanned once with a
        monotone-deque sliding-window minimum — O(T) amortized for the
        whole search instead of O(T²) point rescans per candidate.
        Large profiles route through the JIT scan kernel when numba is
        available (:mod:`repro.power.kernels`); counts are integers, so
        both paths are exactly identical.
        """
        if self._monotone:
            start = self.earliest_at_least(needed, self.times[0])
            return start
        times, free = self.times, self.free
        n = len(times)
        if kernels.HAVE_NUMBA and n >= _KERNEL_MIN_POINTS:
            idx = kernels.earliest_fit_index(times, free, needed, duration)
            return None if idx < 0 else times[idx]
        window: deque = deque()  # indices into free, values increasing
        j = 0
        for i in range(n):
            end = times[i] + duration
            while j < n and times[j] < end:
                while window and free[window[-1]] >= free[j]:
                    window.pop()
                window.append(j)
                j += 1
            while window and window[0] < i:
                window.popleft()
            # Degenerate zero-length window (duration <= 0): the seed
            # semantics still require the level to hold at the start.
            low = free[window[0]] if window else free[i]
            if low >= needed:
                return times[i]
        return None

    # ------------------------------------------------------------------
    # Reservations
    # ------------------------------------------------------------------
    def reserve(self, start: float, end: float, count: int) -> None:
        """Subtract *count* nodes over ``[start, end)`` — one placed
        reservation (or an immediate start, with ``start == origin``).
        Touches only the segments inside the window.
        """
        if count <= 0:
            raise SchedulingError(
                f"reservation of {count} nodes: counts must be > 0"
            )
        if end <= start:
            return  # empty window: nothing to subtract
        if start < self.times[0]:
            raise SchedulingError(
                f"reservation at t={start} before profile origin {self.times[0]}"
            )
        lo = self._ensure_point(start)
        hi = self._ensure_point(end)
        free = self.free
        for i in range(lo, hi):
            free[i] -= count
        self._monotone = False

    # ------------------------------------------------------------------
    def _ensure_point(self, time: float) -> int:
        """Index of the breakpoint at *time*, inserting it (with the
        enclosing segment's count) when absent."""
        times = self.times
        idx = bisect_left(times, time)
        if idx < len(times) and times[idx] == time:
            return idx
        times.insert(idx, time)
        self.free.insert(idx, self.free[idx - 1])
        return idx

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        steps = ", ".join(
            f"{t:g}:{f}" for t, f in zip(self.times[:8], self.free[:8])
        )
        more = "..." if len(self.times) > 8 else ""
        return f"FreeNodeProfile({steps}{more})"
