"""Structure-of-arrays mirror of the pending queue.

PRs 2-8 drove the *node* dimension of the simulator onto flat numpy
arrays (``VectorPowerMirror``, array-backed ``FreeNodeProfile``); the
*queue* dimension still reached the schedulers as a Python list of
``Job`` objects, so every deep-queue backfill pass paid one attribute
walk per job.  :class:`JobTable` closes that gap: one row per queued
job across parallel columns (nodes required, walltime request, submit
time, priority, queue priority, moldable flag) plus a tombstone mask,
with capacity-doubling backing arrays so enqueue is amortized O(1).

Sync contract (DESIGN.md §12)
-----------------------------
The table is owned by :class:`~repro.core.queue.JobQueue` and mutated
*only* through its hooks:

* ``submit``  -> :meth:`add` (row appended, slot recorded)
* ``remove``  -> :meth:`discard` (row tombstoned; compaction when dead
  rows dominate)
* ``notify_job_changed`` -> :meth:`refresh` (in-place mutation of a
  queued job — moldable reshaping — re-reads the row)

Order is *not* re-derived here: ``JobQueue.pending()`` remains the
single authority for the merged scheduling order, and hands the sorted
job list to :meth:`set_order`.  The table then serves gathered
``(nodes, walltime)`` column slices in exactly that order, cached until
the next membership change or refresh, so a scheduler pass reads the
whole queue as two contiguous arrays instead of ~Q attribute lookups.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workload.job import Job

__all__ = ["JobTable"]

#: Initial row capacity; doubles on demand.
_INITIAL_CAPACITY = 16

#: Compact when dead rows outnumber both this floor and the live rows
#: (keeps the arrays within 2x of the live set without churning on
#: small queues).
_COMPACT_FLOOR = 32


class JobTable:
    """SoA mirror of queued jobs; see the module docstring for the
    sync contract.  Columns are plain numpy arrays; ``live`` rows are
    those not masked by :attr:`tombstone`."""

    __slots__ = (
        "nodes_required",
        "walltime",
        "submit",
        "priority",
        "qpriority",
        "moldable",
        "tombstone",
        "_n",
        "_live",
        "_slot_of",
        "_order_rows",
        "_order_cols",
    )

    def __init__(self) -> None:
        cap = _INITIAL_CAPACITY
        self.nodes_required = np.empty(cap, dtype=np.int64)
        self.walltime = np.empty(cap, dtype=np.float64)
        self.submit = np.empty(cap, dtype=np.float64)
        self.priority = np.empty(cap, dtype=np.int64)
        self.qpriority = np.empty(cap, dtype=np.int64)
        self.moldable = np.zeros(cap, dtype=bool)
        self.tombstone = np.zeros(cap, dtype=bool)
        self._n = 0
        self._live = 0
        self._slot_of: Dict[str, int] = {}
        #: Row indices in merged scheduling order (set by the queue
        #: after each sort); None until the first order handoff.
        self._order_rows: Optional[np.ndarray] = None
        #: Cached gathered (nodes, walltime) columns for `_order_rows`.
        self._order_cols: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        """Number of non-tombstoned rows."""
        return self._live

    @property
    def row_count(self) -> int:
        """Number of occupied rows including tombstones."""
        return self._n

    def slot(self, job_id: str) -> int:
        """Row index of a queued job (KeyError when absent)."""
        return self._slot_of[job_id]

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._slot_of

    # ------------------------------------------------------------------
    # Mutation hooks (called by JobQueue only)
    # ------------------------------------------------------------------
    def add(self, job: Job, qpriority: int) -> int:
        """Append a row for a newly enqueued job; returns its slot."""
        slot = self._n
        if slot == self.nodes_required.shape[0]:
            self._grow(slot + 1)
        self._write_row(slot, job, qpriority)
        self.tombstone[slot] = False
        self._slot_of[job.job_id] = slot
        self._n = slot + 1
        self._live += 1
        self._invalidate_order()
        return slot

    def discard(self, job_id: str) -> None:
        """Tombstone the row of a removed job."""
        slot = self._slot_of.pop(job_id)
        self.tombstone[slot] = True
        self._live -= 1
        self._invalidate_order()
        dead = self._n - self._live
        if dead > _COMPACT_FLOOR and dead > self._live:
            self._compact()

    def refresh(self, job: Job) -> None:
        """Re-read a mutated queued job's row (moldable reshaping
        changes nodes/walltime in place; priority edits ride along)."""
        slot = self._slot_of[job.job_id]
        self._write_row(slot, job, int(self.qpriority[slot]))
        self._order_cols = None

    def clear(self) -> None:
        """Drop every row (wholesale queue replacement on restore)."""
        self._n = 0
        self._live = 0
        self._slot_of.clear()
        self._invalidate_order()

    # ------------------------------------------------------------------
    # Ordered views
    # ------------------------------------------------------------------
    def set_order(self, jobs: Sequence[Job]) -> None:
        """Record the merged scheduling order computed by the queue.

        Called by ``JobQueue.pending()`` right after its sort; the
        stable-order index lets :meth:`order_columns` reproduce
        ``pending()`` order exactly without re-deriving the sort key.
        """
        slot_of = self._slot_of
        self._order_rows = np.fromiter(
            (slot_of[job.job_id] for job in jobs),
            dtype=np.intp,
            count=len(jobs),
        )
        self._order_cols = None

    def order_columns(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(nodes_required, walltime)`` gathered in pending order.

        The gather result is cached until the queue membership or a
        row changes, so repeated scheduler passes over an unchanged
        backlog cost two array reads.  Callers must treat the arrays
        as read-only.
        """
        cols = self._order_cols
        if cols is None:
            rows = self._order_rows
            if rows is None:
                raise RuntimeError("order_columns before set_order")
            cols = (self.nodes_required[rows], self.walltime[rows])
            self._order_cols = cols
        return cols

    def live_ids(self) -> List[str]:
        """Job ids of live rows in slot order (testing/capture aid)."""
        return sorted(self._slot_of, key=self._slot_of.__getitem__)

    # ------------------------------------------------------------------
    def _write_row(self, slot: int, job: Job, qpriority: int) -> None:
        self.nodes_required[slot] = job.nodes
        self.walltime[slot] = job.walltime_request
        self.submit[slot] = job.submit_time
        self.priority[slot] = job.priority
        self.qpriority[slot] = qpriority
        self.moldable[slot] = bool(job.moldable)

    def _invalidate_order(self) -> None:
        self._order_rows = None
        self._order_cols = None

    def _grow(self, need: int) -> None:
        cap = self.nodes_required.shape[0]
        while cap < need:
            cap *= 2
        for name in (
            "nodes_required", "walltime", "submit", "priority",
            "qpriority", "moldable", "tombstone",
        ):
            old = getattr(self, name)
            fresh = np.zeros(cap, dtype=old.dtype)
            fresh[: self._n] = old[: self._n]
            setattr(self, name, fresh)

    def _compact(self) -> None:
        """Densify rows, dropping tombstones; slot order is preserved
        so id->slot stays a stable total order over survivors."""
        keep = np.flatnonzero(~self.tombstone[: self._n])
        for name in (
            "nodes_required", "walltime", "submit", "priority",
            "qpriority", "moldable",
        ):
            col = getattr(self, name)
            col[: keep.size] = col[keep]
        self.tombstone[: keep.size] = False
        self._n = keep.size
        old_to_new = {int(old): new for new, old in enumerate(keep.tolist())}
        self._slot_of = {
            jid: old_to_new[slot] for jid, slot in self._slot_of.items()
        }
        self._invalidate_order()
