"""Tests for the job model and life-cycle."""

import pytest

from repro.errors import JobStateError, WorkloadError
from repro.workload import Job, JobState, MoldableConfig
from repro.workload.phases import COMPUTE_BOUND


class TestValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(WorkloadError):
            Job("j", nodes=0, work_seconds=10, walltime_request=10)
        with pytest.raises(WorkloadError):
            Job("j", nodes=1, work_seconds=0, walltime_request=10)
        with pytest.raises(WorkloadError):
            Job("j", nodes=1, work_seconds=10, walltime_request=0)

    def test_moldable_config_validation(self):
        with pytest.raises(WorkloadError):
            MoldableConfig(0, 10.0)
        with pytest.raises(WorkloadError):
            MoldableConfig(1, 0.0)


class TestLifecycle:
    def test_happy_path(self, job_factory):
        job = job_factory(nodes=2, submit=5.0)
        job.start(10.0, [0, 1])
        assert job.state is JobState.RUNNING
        job.complete(50.0)
        assert job.state is JobState.COMPLETED
        assert job.wait_time == 5.0
        assert job.run_time == 40.0
        assert job.turnaround == 45.0
        assert job.node_seconds == 80.0
        assert job.is_terminal

    def test_start_wrong_node_count(self, job_factory):
        job = job_factory(nodes=2)
        with pytest.raises(JobStateError):
            job.start(0.0, [0])

    def test_kill_records_reason(self, job_factory):
        job = job_factory()
        job.start(0.0, [0])
        job.kill(5.0, "emergency power limit")
        assert job.state is JobState.KILLED
        assert job.kill_reason == "emergency power limit"

    def test_timeout(self, job_factory):
        job = job_factory()
        job.start(0.0, [0])
        job.timeout(200.0)
        assert job.state is JobState.TIMEOUT

    def test_cancel_pending_only(self, job_factory):
        job = job_factory()
        job.cancel()
        assert job.state is JobState.CANCELLED
        other = job_factory(job_id="j2")
        other.start(0.0, [0])
        with pytest.raises(JobStateError):
            other.cancel()

    def test_no_double_start(self, job_factory):
        job = job_factory()
        job.start(0.0, [0])
        with pytest.raises(JobStateError):
            job.start(1.0, [0])

    def test_terminal_states_frozen(self, job_factory):
        job = job_factory()
        job.start(0.0, [0])
        job.complete(10.0)
        with pytest.raises(JobStateError):
            job.kill(11.0)


class TestDerived:
    def test_bounded_slowdown_floor(self, job_factory):
        # Very short job: slowdown bounded by the threshold.
        job = job_factory(work=1.0)
        job.start(0.0, [0])
        job.complete(1.0)
        assert job.bounded_slowdown(threshold=10.0) == pytest.approx(1.0)

    def test_bounded_slowdown_with_wait(self, job_factory):
        job = job_factory(submit=0.0)
        job.start(100.0, [0])
        job.complete(200.0)
        # (100 + 100) / 100 = 2
        assert job.bounded_slowdown() == pytest.approx(2.0)

    def test_unfinished_metrics_are_none(self, job_factory):
        job = job_factory()
        assert job.wait_time is None
        assert job.run_time is None
        assert job.turnaround is None
        assert job.bounded_slowdown() is None

    def test_profile_means(self, job_factory):
        job = job_factory(profile=COMPUTE_BOUND)
        assert job.mean_sensitivity == pytest.approx(0.95)
        assert job.mean_power_intensity == pytest.approx(1.0)

    def test_config_for(self, job_factory):
        configs = (MoldableConfig(2, 100.0), MoldableConfig(4, 60.0))
        job = job_factory(nodes=2, moldable=configs)
        assert job.config_for(4).work_seconds == 60.0
        assert job.config_for(8) is None
