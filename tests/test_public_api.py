"""Meta-tests on the public API surface.

Guards the packaging-level promises: importability of everything the
package advertises, docstrings on every public module and exported
symbol, and the top-level quickstart.
"""

import importlib
import pkgutil

import pytest

import repro


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


ALL_MODULES = _walk_modules()


class TestApiSurface:
    def test_version_present(self):
        assert repro.__version__

    def test_quickstart_runs(self):
        result = repro.quickstart(nodes=8, jobs=10, seed=1)
        assert result.metrics.jobs_completed == 10

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_imports_and_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.simulator",
            "repro.cluster",
            "repro.power",
            "repro.workload",
            "repro.telemetry",
            "repro.prediction",
            "repro.grid",
            "repro.core",
            "repro.policies",
            "repro.centers",
            "repro.survey",
            "repro.analysis",
        ],
    )
    def test_all_exports_resolve_and_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
        for name in module.__all__:
            obj = getattr(module, name, None)
            assert obj is not None, f"{module_name}.{name} missing"
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{module_name}.{name} undocumented"

    def test_subpackage_count_matches_design(self):
        subpackages = {
            name.split(".")[1]
            for name in ALL_MODULES
            if name.count(".") == 1
        }
        expected = {
            "simulator", "cluster", "power", "workload", "telemetry",
            "prediction", "grid", "core", "policies", "centers",
            "survey", "analysis",
        }
        # Plain modules (errors, units, _version) are not packages.
        assert expected <= subpackages | {"errors", "units", "_version"}

    def test_error_hierarchy_rooted(self):
        from repro import errors

        roots = [
            obj for name, obj in vars(errors).items()
            if isinstance(obj, type) and issubclass(obj, Exception)
        ]
        for exc in roots:
            assert issubclass(exc, errors.ReproError) or exc is errors.ReproError
