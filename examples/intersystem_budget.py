#!/usr/bin/env python
"""Inter-system power budget sharing — two machines, one facility.

Tokyo Tech's technology-development line: "TSUBAME2 and TSUBAME3 will
need to share the facility power budget."  Two machines run on one
event engine under one facility envelope; a coordinator re-divides the
budget every five minutes proportionally to demand, so a busy machine
borrows watts from a quiet one — the automated version of what CEA
does manually ("shutting down nodes to shift power budget between
systems").

Run:  python examples/intersystem_budget.py
"""

from repro.cluster import Machine, MachineSpec
from repro.core import (
    ClusterSimulation,
    EasyBackfillScheduler,
    SiteSimulation,
)
from repro.policies import PowerAwareAdmissionPolicy
from repro.simulator import Simulator, TraceRecorder
from repro.units import HOUR
from repro.workload import Job
from repro.workload.phases import COMPUTE_BOUND


def burst(prefix: str, count: int, start: float) -> list:
    return [
        Job(job_id=f"{prefix}{i}", nodes=4, work_seconds=1200.0,
            walltime_request=4000.0, submit_time=start + i * 120.0,
            profile=COMPUTE_BOUND, user=f"{prefix}user")
        for i in range(count)
    ]


def main() -> None:
    engine = Simulator()
    trace = TraceRecorder(enabled=False)
    simulations = []
    # tsubame2 is slammed in the morning; tsubame3 gets its burst later.
    for name, jobs in (
        ("tsubame2", burst("t2-", 18, start=0.0)),
        ("tsubame3", burst("t3-", 18, start=4 * HOUR)),
    ):
        machine = Machine(MachineSpec(name=name, nodes=24,
                                      idle_power=120.0, max_power=450.0))
        simulations.append(
            ClusterSimulation(
                machine, EasyBackfillScheduler(), jobs,
                policies=[PowerAwareAdmissionPolicy(
                    budget_watts=machine.peak_power)],
                sim=engine, trace=trace,
            )
        )

    total_peak = sum(s.machine.peak_power for s in simulations)
    site = SiteSimulation(simulations,
                          site_budget_watts=total_peak * 0.6,
                          coordinator_interval=300.0)
    print(f"facility budget: {site.site_budget.limit_watts / 1e3:.1f} kW "
          f"(60% of {total_peak / 1e3:.1f} kW combined peak)")

    results = site.run()
    print(f"coordinator reallocations: {site.coordinator.reallocations}")
    print()
    print(f"{'machine':10s} {'final budget kW':>16s} {'done':>5s} "
          f"{'mean wait s':>12s} {'makespan h':>11s}")
    for result in results:
        name = result.machine.name
        budget = site.site_budget.find(name).limit_watts
        m = result.metrics
        print(f"{name:10s} {budget / 1e3:16.1f} {m.jobs_completed:5d} "
              f"{m.mean_wait:12.0f} {m.makespan / 3600:11.2f}")

    print("\nthe budget followed the load: each machine's burst pulled "
          "watts across while the other was quiet.")


if __name__ == "__main__":
    main()
