"""Synthetic application catalog.

LRZ's production capability characterizes every new application "for
frequency, runtime and energy" on first run, then schedules it at the
frequency matching the administrator's goal (energy-to-solution or
best performance).  That requires a population of applications with
*different* frequency responses — which is exactly what this catalog
provides: named applications with distinct phase profiles, parallel
efficiency (Amdahl serial fraction) and power intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import WorkloadError
from .phases import (
    BALANCED,
    COMM_BOUND,
    COMPUTE_BOUND,
    MEMORY_BOUND,
    Phase,
    PhaseProfile,
)


@dataclass(frozen=True)
class Application:
    """A named application archetype.

    Attributes
    ----------
    name:
        Catalog key, also used as job ``app_name``.
    profile:
        Phase structure (drives DVFS response and power draw).
    serial_fraction:
        Amdahl serial fraction; governs moldable-job runtime scaling:
        ``T(n) = T(1)·(s + (1-s)/n)``.
    typical_nodes / typical_work:
        Medians used by generators when drawing jobs of this app.
    """

    name: str
    profile: PhaseProfile
    serial_fraction: float = 0.02
    typical_nodes: int = 8
    typical_work: float = 3600.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.serial_fraction < 1.0):
            raise WorkloadError(
                f"app {self.name!r}: serial fraction must be in [0,1), "
                f"got {self.serial_fraction}"
            )

    def scaled_work(self, base_work: float, base_nodes: int, nodes: int) -> float:
        """Work (full-speed runtime) when run on *nodes* instead of *base_nodes*.

        Amdahl scaling: total computation is fixed; the parallel part
        divides across nodes, the serial part does not.
        """
        if nodes <= 0 or base_nodes <= 0:
            raise WorkloadError("node counts must be positive")
        s = self.serial_fraction
        # Work normalized so that T(base_nodes) == base_work.
        t1 = base_work / (s + (1.0 - s) / base_nodes)
        return t1 * (s + (1.0 - s) / nodes)


class ApplicationCatalog:
    """A weighted collection of applications to draw jobs from."""

    def __init__(self, apps: List[Application], weights: Optional[List[float]] = None) -> None:
        if not apps:
            raise WorkloadError("catalog needs at least one application")
        names = [a.name for a in apps]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate application names: {names}")
        self.apps = list(apps)
        if weights is None:
            weights = [1.0] * len(apps)
        if len(weights) != len(apps) or any(w < 0 for w in weights) or sum(weights) == 0:
            raise WorkloadError("weights must be non-negative, same length, not all zero")
        total = float(sum(weights))
        self.weights = [w / total for w in weights]
        self._by_name: Dict[str, Application] = {a.name: a for a in apps}

    def __len__(self) -> int:
        return len(self.apps)

    def __getitem__(self, name: str) -> Application:
        try:
            return self._by_name[name]
        except KeyError:
            raise WorkloadError(f"no application named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        """Application names in catalog order."""
        return [a.name for a in self.apps]

    def sample(self, rng: np.random.Generator) -> Application:
        """Draw one application according to the catalog weights."""
        idx = rng.choice(len(self.apps), p=self.weights)
        return self.apps[int(idx)]


def default_catalog() -> ApplicationCatalog:
    """A realistic HPC mix: CFD/MD compute-heavy, graph/memory codes, I/O.

    Weights approximate a typical center's cycle consumption: dominated
    by a few compute-bound community codes with a long tail of
    less-intense work.
    """
    apps = [
        Application("cfd_solver", COMPUTE_BOUND, serial_fraction=0.01,
                    typical_nodes=64, typical_work=4 * 3600.0),
        Application("md_dynamics", COMPUTE_BOUND, serial_fraction=0.005,
                    typical_nodes=32, typical_work=8 * 3600.0),
        Application("climate_model", BALANCED, serial_fraction=0.03,
                    typical_nodes=128, typical_work=12 * 3600.0),
        Application("graph_analytics", MEMORY_BOUND, serial_fraction=0.08,
                    typical_nodes=16, typical_work=2 * 3600.0),
        Application("sparse_solver", MEMORY_BOUND, serial_fraction=0.05,
                    typical_nodes=32, typical_work=3 * 3600.0),
        Application("spectral_fft", PhaseProfile([
            Phase(0.6, sensitivity=0.9, intensity=0.95, kind="compute"),
            Phase(0.4, sensitivity=0.2, intensity=0.55, kind="comm"),
        ]), serial_fraction=0.02, typical_nodes=64, typical_work=3600.0),
        Application("io_pipeline", COMM_BOUND, serial_fraction=0.15,
                    typical_nodes=4, typical_work=1800.0),
        Application("ensemble_member", BALANCED, serial_fraction=0.01,
                    typical_nodes=1, typical_work=3600.0),
    ]
    weights = [0.22, 0.18, 0.12, 0.10, 0.10, 0.10, 0.06, 0.12]
    return ApplicationCatalog(apps, weights)
