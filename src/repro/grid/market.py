"""Per-region electricity markets for the federation broker.

TARDIS-style multi-center cost optimization (PAPERS.md, arxiv
2503.11011) needs each site's grid boundary condition in one object:
the local time-of-use tariff, a carbon-intensity trace on the same
piecewise-daily structure, the region's UTC offset (so "night" means
local night), and any demand-response windows the regional operator
has scheduled.  :class:`RegionMarket` packages those; the
:class:`~repro.federation.broker.GlobalBroker` queries forecast means
over its rolling horizon and bills reported power series.

All times entering the public API are *simulation* times (UTC seconds
from t=0); the market shifts them into local wall-clock before
touching its schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .esp import ElectricityPriceSchedule, ElectricityServiceProvider
from .events import DemandResponseEvent, GridEventSchedule


@dataclass(frozen=True)
class RegionMarket:
    """One region's electricity market as seen by a federated site.

    Parameters
    ----------
    name:
        Market identifier (e.g. ``"jp-east"``).
    utc_offset_hours:
        Local wall-clock offset from simulation (UTC) time.
    tariff:
        Time-of-use price schedule in **local** hours, currency/kWh.
    carbon:
        Carbon-intensity schedule in **local** hours, kg CO2/kWh
        (reuses the piecewise-daily tariff structure).
    demand_limit_watts / penalty_per_kwh:
        Contracted demand limit and over-limit penalty rate.
    dr_events:
        Demand-response windows in **simulation** time: during each,
        the regional operator caps the site at the event's limit.
    """

    name: str
    utc_offset_hours: float
    tariff: ElectricityPriceSchedule
    carbon: ElectricityPriceSchedule
    demand_limit_watts: float = float("inf")
    penalty_per_kwh: float = 0.0
    dr_events: Tuple[DemandResponseEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not -12.0 <= self.utc_offset_hours <= 14.0:
            raise ConfigurationError(
                f"utc_offset_hours {self.utc_offset_hours} outside [-12, 14]"
            )
        # Validates ordering/overlap; the tuple field stays the source
        # of truth so the dataclass remains picklable-by-fields.
        object.__setattr__(
            self, "_dr_schedule", GridEventSchedule(self.dr_events)
        )
        object.__setattr__(
            self,
            "_esp",
            ElectricityServiceProvider(
                self.tariff, self.demand_limit_watts, self.penalty_per_kwh
            ),
        )
        object.__setattr__(
            self, "_carbon_esp", ElectricityServiceProvider(self.carbon)
        )

    # ------------------------------------------------------------------
    def local_times(self, times: Sequence[float]) -> np.ndarray:
        """Shift simulation times into local wall-clock seconds."""
        return np.asarray(times, dtype=float) + self.utc_offset_hours * 3600.0

    def local_time(self, time: float) -> float:
        """Scalar version of :meth:`local_times`."""
        return time + self.utc_offset_hours * 3600.0

    # ------------------------------------------------------------------
    def cost_of(self, times: Sequence[float], watts: Sequence[float]) -> float:
        """Electricity cost of a power series sampled at sim times."""
        return self._esp.cost_of(self.local_times(times), watts)

    def carbon_of(self, times: Sequence[float], watts: Sequence[float]) -> float:
        """Carbon footprint (kg CO2) of a power series at sim times."""
        return self._carbon_esp.cost_of(self.local_times(times), watts)

    def price_at(self, time: float) -> float:
        """Local tariff in force at simulation *time*."""
        return self.tariff.price_at(self.local_time(time))

    def mean_price(self, start: float, end: float) -> float:
        """Exact mean tariff over the sim-time window [start, end)."""
        return self.tariff.average_price(
            self.local_time(start), self.local_time(end)
        )

    def mean_carbon(self, start: float, end: float) -> float:
        """Exact mean carbon intensity over the sim-time window."""
        return self.carbon.average_price(
            self.local_time(start), self.local_time(end)
        )

    # ------------------------------------------------------------------
    def dr_limit(self, start: float, end: float) -> float:
        """Tightest demand-response cap overlapping [start, end).

        Infinity when no DR window intersects it.  The broker applies
        this on top of its market-driven allocation, so a site never
        receives a budget its regional operator would reject.
        """
        limit = float("inf")
        for event in self._dr_schedule.events:
            if event.start < end and start < event.end:
                limit = min(limit, event.limit_watts)
        return limit
