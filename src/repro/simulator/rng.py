"""Named, reproducible random-number streams.

Every stochastic component (arrival process, runtime draw, power noise,
manufacturing variability, prediction error, ...) draws from its own
named stream so that adding randomness to one component never perturbs
another — the classic variance-reduction discipline for simulation
studies.  Streams are derived from a single root seed with
``numpy.random.SeedSequence.spawn``-style key derivation, so the whole
framework is reproducible bit-for-bit from one integer.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Deterministically derive a child seed for *name* from *root_seed*.

    This is the key-derivation rule :class:`RngStreams` uses for its
    named streams and :meth:`RngStreams.fork`, exposed for components
    that need reproducible per-task seeds (e.g. the experiment
    executor's per-replica seeds) without holding a stream family.
    """
    digest = hashlib.sha256(f"{int(root_seed)}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Factory of independent named :class:`numpy.random.Generator` streams.

    Examples
    --------
    >>> rng = RngStreams(seed=42)
    >>> arrivals = rng.stream("arrivals")
    >>> runtimes = rng.stream("runtimes")
    >>> float(arrivals.random()) != float(runtimes.random())
    True
    >>> RngStreams(42).stream("arrivals").random() == RngStreams(42).stream("arrivals").random()
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed this stream family derives from."""
        return self._seed

    def _derive_key(self, name: str) -> int:
        return derive_seed(self._seed, name)

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        The same name always maps to the same generator object, so a
        component can re-fetch its stream without losing its position.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(
                np.random.SeedSequence([self._seed, self._derive_key(name)])
            )
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngStreams":
        """Create a child family keyed under *name* (e.g. per replica)."""
        return RngStreams(self._derive_key(name))
