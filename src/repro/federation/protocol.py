"""Wire types of the federation's lockstep epoch protocol.

The campaign driver and the site workers live in different processes
(:class:`~repro.analysis.executor.FanoutPool` shards them), so every
message is a plain picklable dataclass with only primitive payloads:
floats, strings, tuples and the raw ``RPST`` snapshot bytes.  One
coordination epoch exchanges exactly one :class:`EpochTask` per site
(directive + frozen state in) and one :class:`EpochOutcome` back
(telemetry + advanced state out); the broker never sees simulator
objects, only :class:`SiteReport` numbers — which is what keeps the
allocation loop deterministic and the protocol replayable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..units import DAY

__all__ = [
    "SiteConfig",
    "SiteDirective",
    "SiteReport",
    "EpochTask",
    "EpochOutcome",
]


@dataclass(frozen=True)
class SiteConfig:
    """Immutable identity of one federated site.

    The tuple (slug, seed, horizon, kwargs) fully determines the
    factory a worker rebuilds the simulation from; it is part of the
    snapshot's config digest, so a snapshot taken on one worker can
    only be resumed by a worker holding the *same* config.
    """

    slug: str
    seed: int = 0
    horizon: float = 2.0 * DAY
    budget_check_interval: float = 300.0
    #: extra keyword arguments forwarded to the center builder,
    #: as a sorted tuple of (name, value) pairs so the config stays
    #: hashable and its digest stable.
    builder_kwargs: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        object.__setattr__(
            self, "builder_kwargs", tuple(sorted(self.builder_kwargs))
        )


@dataclass(frozen=True)
class SiteDirective:
    """Broker -> site: the power budget for one epoch.

    ``budget_watts=inf`` means unconstrained; the site's
    :class:`~repro.policies.site_budget.SiteBudgetPolicy` is inert
    then, which is exactly the broker-off baseline.
    """

    epoch: int
    budget_watts: float = math.inf

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ConfigurationError("epoch must be >= 0")
        if self.budget_watts <= 0:
            raise ConfigurationError("budget_watts must be positive")


@dataclass(frozen=True)
class SiteReport:
    """Site -> broker: telemetry out of one completed epoch.

    The power series covers ``[epoch_start, epoch_end]`` inclusive of
    both boundary samples; billing integrates the ``len - 1`` leading
    half-open intervals, so concatenating consecutive epoch reports
    never double-counts an interval.
    """

    slug: str
    epoch: int
    epoch_start: float
    epoch_end: float
    #: exact state digest at epoch end (pre-finalize) — the
    #: determinism pin for lockstep replication.
    fingerprint: str
    power_times: Tuple[float, ...]
    power_watts: Tuple[float, ...]
    #: cumulative trapezoidal energy since t=0, joules.
    energy_joules: float
    #: instantaneous draw plus queued-backlog estimate, watts — the
    #: broker's demand signal.
    demand_watts: float
    backlog_jobs: int
    backlog_nodes: int
    running_jobs: int
    completed_jobs: int
    #: cumulative budget-gate vetoes at this site.
    vetoes: int
    #: machine idle floor / peak: the feasible budget band.
    floor_watts: float
    ceiling_watts: float
    #: survey metrics, present only on the final epoch (finalize()
    #: runs once, after the last snapshot).
    metrics: Optional[Dict[str, float]] = None


@dataclass(frozen=True)
class EpochTask:
    """Driver -> worker: advance one site through one epoch.

    ``snapshot_blob=None`` means epoch zero — build the site fresh
    from its config; otherwise restore the ``RPST`` bytes onto a
    factory-built twin.  ``final`` epochs additionally finalize the
    simulation (metrics) after the closing snapshot; ``keep_snapshot``
    is dropped for what-if forks, which only need the report.
    """

    config: SiteConfig
    directive: SiteDirective
    epoch: int
    epoch_start: float
    epoch_end: float
    snapshot_blob: Optional[bytes] = None
    final: bool = False
    keep_snapshot: bool = True

    def __post_init__(self) -> None:
        if self.epoch_end <= self.epoch_start:
            raise ConfigurationError("epoch_end must be after epoch_start")


@dataclass(frozen=True)
class EpochOutcome:
    """Worker -> driver: the report plus the advanced state."""

    report: SiteReport
    snapshot_blob: Optional[bytes] = None
