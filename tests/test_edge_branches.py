"""Edge-branch coverage across the core and substrates."""

import pytest

from repro.cluster import NodeState
from repro.core import (
    ClusterSimulation,
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FcfsScheduler,
)
from repro.errors import SchedulingError
from repro.power import Capmc
from repro.units import HOUR
from repro.workload import JobState
from tests.conftest import make_job


class TestRunLoopEdges:
    def test_max_events_in_terminal_mode(self, small_machine):
        jobs = [make_job(job_id=f"j{i}", work=100.0, submit=float(i))
                for i in range(5)]
        sim = ClusterSimulation(small_machine, FcfsScheduler(), jobs)
        with pytest.raises(SchedulingError):
            sim.run(max_events=3)

    def test_empty_workload_run(self, small_machine):
        sim = ClusterSimulation(small_machine, FcfsScheduler(), [])
        result = sim.run()
        assert result.metrics.jobs_submitted == 0
        assert result.final_time == 0.0

    def test_prepare_idempotent(self, small_machine):
        job = make_job(work=50.0)
        sim = ClusterSimulation(small_machine, FcfsScheduler(), [job])
        sim.prepare()
        sim.prepare()  # second call must not duplicate submissions
        sim.run()
        assert job.state is JobState.COMPLETED
        # Only one submit event fired for the job.
        assert sim.trace.count("job.submit") == 1

    def test_job_power_unknown_job(self, small_machine):
        sim = ClusterSimulation(small_machine, FcfsScheduler(), [])
        assert sim.job_power("ghost") == 0.0

    def test_simultaneous_submits_single_pass(self, small_machine):
        # Many submits at t=0 coalesce into few passes (smoke for the
        # pass-pending flag).
        jobs = [make_job(job_id=f"j{i}", nodes=1, work=50.0)
                for i in range(16)]
        sim = ClusterSimulation(small_machine, EasyBackfillScheduler(), jobs)
        result = sim.run()
        assert result.metrics.jobs_completed == 16
        # All 16 started at t=0: one scheduling instant.
        starts = {j.start_time for j in jobs}
        assert starts == {0.0}


class TestSchedulerEdges:
    def test_conservative_with_empty_machine_profile(self, small_machine):
        # No running jobs: every fitting job starts immediately.
        jobs = [make_job(job_id=f"j{i}", nodes=16, work=100.0,
                         walltime=500.0, submit=0.0) for i in range(2)]
        sim = ClusterSimulation(small_machine,
                                ConservativeBackfillScheduler(), jobs)
        sim.run()
        assert jobs[0].start_time == 0.0
        # The reservation was for t=500 (walltime bound), but the pass
        # triggered by the real completion starts it at t=100.
        assert jobs[1].start_time == pytest.approx(100.0)

    def test_easy_all_jobs_oversized(self, small_machine):
        jobs = [make_job(job_id=f"j{i}", nodes=99, work=10.0)
                for i in range(2)]
        sim = ClusterSimulation(small_machine, EasyBackfillScheduler(), jobs)
        result = sim.run(stall_timeout=HOUR)
        assert result.metrics.jobs_unfinished == 2


class TestCapmcEdges:
    def test_per_node_counters(self, small_machine):
        capmc = Capmc(small_machine)
        counters = capmc.get_node_energy_counters()
        assert set(counters) == {n.node_id for n in small_machine.nodes}
        assert all(w > 0 for w in counters.values())

    def test_system_cap_skips_off_nodes(self, small_machine):
        node = small_machine.node(0)
        node.transition(NodeState.SHUTTING_DOWN, 0.0)
        node.transition(NodeState.OFF, 1.0)
        capmc = Capmc(small_machine)
        capmc.set_system_cap(15 * 300.0)
        assert node.power_cap is None
        assert small_machine.node(1).power_cap == pytest.approx(300.0)


class TestMetricsEdges:
    def test_unfinished_only_workload(self, small_machine):
        from repro.core.metrics import compute_metrics

        pending = make_job()
        report = compute_metrics([pending], total_nodes=4)
        assert report.jobs_unfinished == 1
        assert report.mean_wait == 0.0
        assert report.throughput_per_day == 0.0

    def test_span_override(self, small_machine):
        from repro.core.metrics import compute_metrics

        job = make_job(nodes=4)
        job.start(0.0, [0, 1, 2, 3])
        job.complete(100.0)
        half = compute_metrics([job], total_nodes=4, span=200.0)
        full = compute_metrics([job], total_nodes=4, span=100.0)
        assert half.utilization == pytest.approx(full.utilization / 2)


class TestQueueEdges:
    def test_by_queue_includes_fallback_jobs(self):
        from repro.core import JobQueue, QueueConfig

        queue = JobQueue([QueueConfig("default")])
        job = make_job(queue="undeclared")
        queue.submit(job)
        groups = queue.by_queue()
        assert job in groups["default"]
