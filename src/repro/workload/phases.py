"""Application execution phases.

Freeh et al. (cited as [21]) showed the energy-time trade-off of DVFS
depends on whether code is compute-, memory- or communication-bound;
approaches that "take advantage of compute, memory, communication
phases" are explicitly called out in the survey's related work.  A
:class:`Phase` carries the two coefficients the power model needs:

* ``sensitivity`` — how much slowdown a frequency reduction causes
  (1.0: perfectly compute-bound; ~0.1: stalls dominate);
* ``intensity`` — how much of the node's dynamic power range the phase
  actually exercises (vectorized compute burns more than pointer
  chasing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import WorkloadError


@dataclass(frozen=True)
class Phase:
    """One phase of an application's execution.

    Attributes
    ----------
    fraction:
        Share of the job's total work done in this phase, in (0, 1].
    sensitivity:
        Frequency sensitivity in [0, 1].
    intensity:
        Dynamic-power intensity (utilization) in [0, 1].
    kind:
        Label ("compute", "memory", "comm", "io", ...).
    """

    fraction: float
    sensitivity: float = 1.0
    intensity: float = 1.0
    kind: str = "compute"

    def __post_init__(self) -> None:
        if not (0.0 < self.fraction <= 1.0):
            raise WorkloadError(f"phase fraction must be in (0,1], got {self.fraction}")
        if not (0.0 <= self.sensitivity <= 1.0):
            raise WorkloadError(f"sensitivity must be in [0,1], got {self.sensitivity}")
        if not (0.0 <= self.intensity <= 1.0):
            raise WorkloadError(f"intensity must be in [0,1], got {self.intensity}")


class PhaseProfile:
    """An ordered sequence of phases summing to the whole job.

    Profiles are immutable after construction, so the work-weighted
    means are precomputed (they sit on the simulation's hottest path:
    every power evaluation of every busy node reads them).
    """

    def __init__(self, phases: Sequence[Phase]) -> None:
        phases = list(phases)
        if not phases:
            raise WorkloadError("a phase profile needs at least one phase")
        total = sum(p.fraction for p in phases)
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(f"phase fractions must sum to 1, got {total}")
        self.phases: List[Phase] = phases
        self.mean_sensitivity: float = sum(
            p.fraction * p.sensitivity for p in phases
        )
        self.mean_intensity: float = sum(
            p.fraction * p.intensity for p in phases
        )

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self):
        return iter(self.phases)

    def segments(self, total_work: float) -> List[Tuple[float, Phase]]:
        """Split *total_work* into per-phase (work, phase) segments."""
        return [(p.fraction * total_work, p) for p in self.phases]


#: Canonical profiles used across examples and presets.
COMPUTE_BOUND = PhaseProfile([Phase(1.0, sensitivity=0.95, intensity=1.0, kind="compute")])
MEMORY_BOUND = PhaseProfile([Phase(1.0, sensitivity=0.25, intensity=0.7, kind="memory")])
COMM_BOUND = PhaseProfile([Phase(1.0, sensitivity=0.15, intensity=0.5, kind="comm")])
BALANCED = PhaseProfile(
    [
        Phase(0.5, sensitivity=0.95, intensity=1.0, kind="compute"),
        Phase(0.3, sensitivity=0.3, intensity=0.7, kind="memory"),
        Phase(0.2, sensitivity=0.15, intensity=0.5, kind="comm"),
    ]
)
