"""Experiment ``exp-dvfs``: Etinski-style DVFS power budgeting.

Budget sweep comparing plain power-aware admission (jobs wait until
full-power slots fit the budget) against DVFS budgeting (jobs start
early at reduced frequency).  Shape claim (Etinski [18], [19]): under
tight budgets, DVFS budgeting cuts waiting substantially, paying a
bounded runtime stretch.

Ablation (DESIGN.md): the power-model exponent alpha — the DVFS
advantage requires alpha > 1 (superlinear power-frequency curve); the
bench checks the advantage at alpha = 2 and its shrinkage at
alpha = 1.2.
"""

from __future__ import annotations

import copy

from repro.analysis.report import render_columns
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import DvfsBudgetPolicy, PowerAwareAdmissionPolicy
from repro.power import NodePowerModel
from repro.workload.phases import COMPUTE_BOUND

from .conftest import bench_machine, bench_workload, write_artifact

BUDGET_FRACTIONS = (0.5, 0.7, 0.9)


def _jobs():
    jobs = bench_workload(seed=47, count=100, nodes=48, rate_per_hour=70.0)
    for job in jobs:
        job.profile = COMPUTE_BOUND
    return jobs


def _run(mode: str, fraction: float, alpha: float = 2.0):
    machine = bench_machine(48)
    budget = machine.idle_floor_power + fraction * (
        machine.peak_power - machine.idle_floor_power
    )
    if mode == "dvfs":
        policy = DvfsBudgetPolicy(budget_watts=budget)
    else:
        policy = PowerAwareAdmissionPolicy(budget_watts=budget)
    sim = ClusterSimulation(
        machine, EasyBackfillScheduler(), copy.deepcopy(_jobs()),
        policies=[policy], seed=1,
        power_model=NodePowerModel(alpha=alpha),
        cap_watts_for_metrics=budget,
    )
    return sim.run().metrics


def test_bench_dvfs_budget_sweep(benchmark, artifact_dir):
    def sweep():
        out = {}
        for fraction in BUDGET_FRACTIONS:
            for mode in ("admission", "dvfs"):
                out[(mode, fraction)] = _run(mode, fraction)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [mode, f"{frac:.0%}", f"{m.mean_wait:.0f}",
         f"{m.mean_bounded_slowdown:.2f}", f"{m.makespan / 3600:.2f}",
         f"{m.cap_exceedance_fraction:.1%}"]
        for (mode, frac), m in results.items()
    ]
    write_artifact(
        "exp-dvfs",
        "EXP-DVFS — admission-only vs DVFS budgeting (compute-bound)\n\n"
        + render_columns(
            ["mode", "budget", "wait[s]", "slowdown", "makespan[h]",
             "time>budget"],
            rows,
        ),
    )

    # Tight budget: DVFS packs more (slowed) jobs under the budget and
    # finishes the workload substantially sooner.
    tight_admission = results[("admission", 0.5)]
    tight_dvfs = results[("dvfs", 0.5)]
    assert tight_dvfs.makespan <= 0.85 * tight_admission.makespan
    # Both hold the budget.
    for metrics in results.values():
        assert metrics.cap_exceedance_fraction <= 0.05
    # Generous budget: the two modes converge.
    loose_admission = results[("admission", 0.9)]
    loose_dvfs = results[("dvfs", 0.9)]
    assert abs(loose_dvfs.makespan - loose_admission.makespan) \
        <= 0.15 * loose_admission.makespan


def test_bench_dvfs_alpha_ablation(benchmark, artifact_dir):
    """Ablation: the advantage requires a superlinear power curve."""

    def sweep():
        out = {}
        for alpha in (1.2, 2.0, 3.0):
            for mode in ("admission", "dvfs"):
                out[(mode, alpha)] = _run(mode, 0.5, alpha=alpha)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [mode, f"{alpha:.1f}", f"{m.mean_wait:.0f}",
         f"{m.makespan / 3600:.2f}"]
        for (mode, alpha), m in results.items()
    ]
    write_artifact(
        "exp-dvfs-alpha",
        "EXP-DVFS — power-curve exponent ablation (budget 50%)\n\n"
        + render_columns(["mode", "alpha", "wait[s]", "makespan[h]"], rows),
    )

    def advantage(alpha):
        return (results[("admission", alpha)].makespan
                / max(results[("dvfs", alpha)].makespan, 1.0))

    # The steeper the curve, the bigger DVFS's throughput advantage.
    assert advantage(3.0) >= advantage(1.2)
