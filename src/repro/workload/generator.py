"""Synthetic workload generation.

Generates job streams matching the statistical envelope the centers
describe in survey Q3: arrival rate (with optional diurnal modulation —
submissions peak in working hours), job-size distribution (log2-ish,
with the capability/capacity split of Q3d), heavy-tailed runtimes, and
the notorious gap between requested and actual walltime ([35] found
user estimates are routinely 2-10x the real runtime, and that this gap
is what makes backfilling work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import WorkloadError
from ..units import DAY, HOUR
from .apps import ApplicationCatalog, default_catalog
from .job import Job, MoldableConfig


@dataclass
class WorkloadSpec:
    """Parameters of a synthetic workload.

    Attributes
    ----------
    arrival_rate:
        Mean job arrivals per second (Poisson).
    diurnal:
        If True, modulate the rate sinusoidally with a working-hours
        peak (x(1+0.8) at 14:00, x(1-0.8) at 02:00).
    duration:
        Length of the submission window, seconds.
    min_nodes / max_nodes:
        Job size range; sizes are drawn log-uniformly in powers of two.
    capability_fraction:
        Fraction of jobs drawn from the *capability* regime (large jobs
        using >= 25 % of max_nodes); the rest is the capacity tail
        (Q3d's split).
    mean_work / work_sigma:
        Lognormal runtime parameters (seconds at full speed).
    overestimate_mean:
        Mean multiplicative walltime over-request (>= 1).
    moldable_fraction:
        Fraction of jobs that carry moldable configurations.
    users:
        Number of distinct users to attribute jobs to.
    """

    arrival_rate: float = 50.0 / HOUR
    diurnal: bool = False
    duration: float = 2.0 * DAY
    min_nodes: int = 1
    max_nodes: int = 256
    capability_fraction: float = 0.1
    mean_work: float = 2.0 * HOUR
    work_sigma: float = 1.0
    overestimate_mean: float = 2.5
    moldable_fraction: float = 0.0
    users: int = 20
    catalog: ApplicationCatalog = field(default_factory=default_catalog)

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise WorkloadError("arrival_rate must be > 0")
        if self.duration <= 0:
            raise WorkloadError("duration must be > 0")
        if not (1 <= self.min_nodes <= self.max_nodes):
            raise WorkloadError(
                f"need 1 <= min_nodes <= max_nodes, got {self.min_nodes}..{self.max_nodes}"
            )
        if not (0.0 <= self.capability_fraction <= 1.0):
            raise WorkloadError("capability_fraction must be in [0,1]")
        if self.mean_work <= 0:
            raise WorkloadError("mean_work must be > 0")
        if self.overestimate_mean < 1.0:
            raise WorkloadError("overestimate_mean must be >= 1")
        if not (0.0 <= self.moldable_fraction <= 1.0):
            raise WorkloadError("moldable_fraction must be in [0,1]")
        if self.users < 1:
            raise WorkloadError("need >= 1 user")


class WorkloadGenerator:
    """Draws reproducible job streams from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng

    # ------------------------------------------------------------------
    # Arrival process
    # ------------------------------------------------------------------
    def _arrival_times(self) -> np.ndarray:
        """Poisson (optionally diurnally thinned) arrival times."""
        spec = self.spec
        if not spec.diurnal:
            # Homogeneous Poisson: exponential gaps.
            expected = spec.arrival_rate * spec.duration
            n_draw = int(expected + 6.0 * math.sqrt(max(expected, 1.0)) + 16)
            gaps = self.rng.exponential(1.0 / spec.arrival_rate, size=n_draw)
            times = np.cumsum(gaps)
            return times[times < spec.duration]
        # Inhomogeneous via thinning against the diurnal peak rate.
        peak = spec.arrival_rate * 1.8
        expected = peak * spec.duration
        n_draw = int(expected + 6.0 * math.sqrt(max(expected, 1.0)) + 16)
        gaps = self.rng.exponential(1.0 / peak, size=n_draw)
        times = np.cumsum(gaps)
        times = times[times < spec.duration]
        hours = (times % DAY) / 3600.0
        rate = spec.arrival_rate * (1.0 + 0.8 * np.sin(2.0 * np.pi * hours / 24.0 - np.pi / 2.0))
        keep = self.rng.random(len(times)) < rate / peak
        return times[keep]

    # ------------------------------------------------------------------
    # Marginal draws
    # ------------------------------------------------------------------
    def _draw_nodes(self, n: int) -> np.ndarray:
        """Job sizes: log2-uniform capacity tail + capability head."""
        spec = self.spec
        lo = max(0, int(math.log2(spec.min_nodes)))
        hi = max(lo, int(math.log2(spec.max_nodes)))
        capability_floor = max(lo, hi - 2)  # top quarter of the log range

        is_capability = self.rng.random(n) < spec.capability_fraction
        cap_exp = self.rng.integers(capability_floor, hi + 1, size=n)
        # Capacity jobs: geometric-ish preference for small sizes.
        span = hi - lo + 1
        weights = np.array([0.5**i for i in range(span)])
        weights /= weights.sum()
        small_exp = lo + self.rng.choice(span, size=n, p=weights)
        exps = np.where(is_capability, cap_exp, small_exp)
        nodes = np.minimum(2**exps, spec.max_nodes)
        return np.maximum(nodes, spec.min_nodes).astype(int)

    def _draw_work(self, n: int) -> np.ndarray:
        """Lognormal full-speed runtimes with the configured mean."""
        spec = self.spec
        sigma = spec.work_sigma
        mu = math.log(spec.mean_work) - 0.5 * sigma * sigma
        work = self.rng.lognormal(mu, sigma, size=n)
        return np.clip(work, 30.0, 30.0 * DAY)

    def _draw_walltimes(self, work: np.ndarray) -> np.ndarray:
        """User walltime requests: multiplicative over-estimates."""
        spec = self.spec
        extra = self.rng.exponential(spec.overestimate_mean - 1.0, size=len(work)) \
            if spec.overestimate_mean > 1.0 else np.zeros(len(work))
        factor = 1.0 + extra
        # Users round up to the next quarter hour, like real submissions.
        raw = work * factor
        return np.ceil(raw / 900.0) * 900.0

    # ------------------------------------------------------------------
    def generate(self, count: Optional[int] = None, id_prefix: str = "job") -> List[Job]:
        """Generate the workload as a submit-time-sorted job list.

        If *count* is given, exactly that many jobs are produced
        (arrival times are rescaled/truncated as needed); otherwise the
        Poisson process decides.
        """
        times = self._arrival_times()
        if count is not None:
            if count <= 0:
                raise WorkloadError("count must be positive")
            while len(times) < count:
                more = self._arrival_times() + (times[-1] if len(times) else 0.0)
                times = np.concatenate([times, more])
            times = times[:count]
        n = len(times)
        if n == 0:
            return []
        nodes = self._draw_nodes(n)
        work = self._draw_work(n)
        walltimes = self._draw_walltimes(work)
        user_idx = self.rng.integers(0, self.spec.users, size=n)
        moldable_mask = self.rng.random(n) < self.spec.moldable_fraction

        jobs: List[Job] = []
        for i in range(n):
            app = self.spec.catalog.sample(self.rng)
            w = float(work[i])
            nd = int(nodes[i])
            moldable: Sequence[MoldableConfig] = ()
            if moldable_mask[i] and nd > 1:
                configs = []
                for alt in {max(1, nd // 2), nd, min(self.spec.max_nodes, nd * 2)}:
                    configs.append(
                        MoldableConfig(alt, app.scaled_work(w, nd, alt))
                    )
                moldable = tuple(sorted(configs, key=lambda c: c.nodes))
            jobs.append(
                Job(
                    job_id=f"{id_prefix}{i:06d}",
                    nodes=nd,
                    work_seconds=w,
                    walltime_request=max(float(walltimes[i]), w),
                    submit_time=float(times[i]),
                    user=f"user{int(user_idx[i]):03d}",
                    profile=app.profile,
                    app_name=app.name,
                    tag=f"{app.name}:{nd}",
                    moldable=tuple(moldable),
                )
            )
        jobs.sort(key=lambda j: j.submit_time)
        return jobs
