"""Tests for the replay/divergence harness (repro.state.replay)."""

from __future__ import annotations


import pytest

from repro.errors import StateError
from repro.state import (
    FingerprintEntry,
    RunRecorder,
    compare_streams,
    lockstep_divergence,
    replay_from,
    run_checkpointed,
    snapshot,
)

from .state_scenarios import build_small


class TestRunRecorder:
    def test_records_monotone_stream(self):
        sim = build_small()
        with RunRecorder(sim) as rec:
            run_checkpointed(sim)
        assert rec.entries
        indices = [e.index for e in rec.entries]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)
        times = [e.time for e in rec.entries]
        assert times == sorted(times)

    def test_stride_skips_entries(self):
        sim = build_small()
        with RunRecorder(sim, every=5) as rec:
            run_checkpointed(sim)
        assert all(e.index % 5 == 0 for e in rec.entries)

    def test_detach_restores_observer(self):
        sim = build_small()
        rec = RunRecorder(sim).attach()
        rec.detach()
        assert sim.sim.observer is None

    def test_double_attach_rejected(self):
        sim = build_small()
        RunRecorder(sim).attach()
        with pytest.raises(StateError, match="observer"):
            RunRecorder(sim).attach()

    def test_bad_stride_rejected(self):
        with pytest.raises(StateError, match="stride"):
            RunRecorder(build_small(), every=0)


class TestReplay:
    def test_replay_from_checkpoint_matches_reference(self):
        sim = build_small()
        with RunRecorder(sim) as rec:
            sim.prepare()
            while sim.sim.now < 700.0 and sim.sim.step():
                pass
            st = snapshot(sim)
            run_checkpointed(sim)
        report = replay_from(st, build_small, rec.entries)
        assert report is None

    def test_replay_detects_tampered_reference(self):
        sim = build_small()
        with RunRecorder(sim) as rec:
            sim.prepare()
            while sim.sim.now < 700.0 and sim.sim.step():
                pass
            st = snapshot(sim)
            run_checkpointed(sim)
        tampered = list(rec.entries)
        victim = tampered[-1]
        tampered[-1] = FingerprintEntry(victim.index, victim.time, "0" * 64)
        report = replay_from(st, build_small, tampered)
        assert report is not None
        assert report.index == victim.index
        assert "divergence" in str(report)

    def test_compare_streams_ignores_non_overlap(self):
        ref = [FingerprintEntry(i, float(i), f"d{i}") for i in range(10)]
        actual = [FingerprintEntry(i, float(i), f"d{i}") for i in range(5, 15)]
        assert compare_streams(ref, actual) is None

    def test_compare_streams_reports_first_mismatch(self):
        ref = [FingerprintEntry(i, float(i), f"d{i}") for i in range(5)]
        actual = list(ref)
        actual[3] = FingerprintEntry(3, 3.0, "other")
        report = compare_streams(ref, actual)
        assert report is not None and report.index == 3


class TestLockstep:
    def test_identical_sims_never_diverge(self):
        assert lockstep_divergence(build_small(), build_small()) is None

    def test_cross_backend_equivalence(self):
        a = build_small(backend="vector")
        b = build_small(backend="scalar")
        # light_fingerprint reads the backend-agnostic power total, so
        # the two backends must march in lockstep.
        assert lockstep_divergence(a, b) is None

    def test_different_workloads_diverge_with_diff(self):
        a = build_small(seed=7)
        b = build_small(seed=7)
        b.jobs[0].work_seconds += 100.0
        report = lockstep_divergence(a, b)
        assert report is not None
        assert report.expected.index == report.actual.index

    def test_max_events_bounds_the_walk(self):
        report = lockstep_divergence(
            build_small(), build_small(), max_events=5
        )
        assert report is None
