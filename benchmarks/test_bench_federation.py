"""Experiment ``exp-federation``: nine centers under the global broker.

The capstone experiment: all nine surveyed centers run concurrently as
sites of one federation for two simulated days, process-sharded over a
:class:`~repro.analysis.executor.FanoutPool`, coordinating every six
hours under the :class:`~repro.federation.GlobalBroker`.  Three
campaigns sweep the coordination knob — broker off (unconstrained
baseline) and two fleet-budget fractions — and the resulting
cost/energy/slowdown points form the Pareto table the survey's global
outlook argues for: coordination trades queue slowdown for measured
electricity-cost (and carbon) reduction.

A fourth campaign repeats the primary broker-on point with a different
worker count and must land on bit-identical per-site state
fingerprints — the lockstep determinism contract (DESIGN.md §13),
pinned here and guarded in CI via ``BENCH_federation.json``.
"""

from __future__ import annotations

import json
import time

from repro.centers import CENTER_MARKETS
from repro.federation import FederationCampaign, GlobalBroker, pareto_front
from repro.units import DAY, HOUR

from .conftest import OUT_DIR, write_artifact

HORIZON = 2.0 * DAY
EPOCH = 6.0 * HOUR
SEED = 1

#: fleet budget fractions swept by the broker-on campaigns; None is
#: the broker-off baseline.
FRACTIONS = (None, 0.70, 0.55)


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into benchmarks/out/BENCH_federation.json."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_federation.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def _run_campaign(fraction, workers=2):
    broker = (
        None
        if fraction is None
        else GlobalBroker(
            CENTER_MARKETS, budget_fraction=fraction, carbon_weight=0.1
        )
    )
    campaign = FederationCampaign(
        broker=broker,
        horizon=HORIZON,
        epoch_seconds=EPOCH,
        workers=workers,
    )
    t0 = time.perf_counter()
    result = campaign.run()
    wall = time.perf_counter() - t0
    return result, wall


def test_bench_federation_pareto(artifact_dir):
    """Cost/energy/slowdown Pareto sweep + lockstep determinism pin."""
    runs = {}
    for fraction in FRACTIONS:
        label = "broker-off" if fraction is None else f"budget-{fraction:.2f}"
        result, wall = _run_campaign(fraction, workers=2)
        runs[label] = (fraction, result, wall)

    # Determinism: repeat the primary broker-on point serially.  The
    # fingerprints pin every site's exact state after every epoch, so
    # equality means the trajectory is bit-reproducible *and* invariant
    # to how sites are sharded across workers.
    primary = f"budget-{FRACTIONS[1]:.2f}"
    repeat, repeat_wall = _run_campaign(FRACTIONS[1], workers=1)
    identical = repeat.fingerprint == runs[primary][1].fingerprint

    rows = []
    for label, (fraction, result, wall) in runs.items():
        summary = result.summary()
        rows.append(
            {
                "label": label,
                "budget_fraction": fraction,
                "cost": summary["cost"],
                "carbon_kg": summary["carbon_kg"],
                "energy_joules": summary["energy_joules"],
                "mean_bounded_slowdown": summary["mean_bounded_slowdown"],
                "completed_jobs": summary["completed_jobs"],
                "vetoes": summary["vetoes"],
                "wall_s": wall,
                "fingerprint": result.fingerprint,
            }
        )
    # Completion is a first-class objective: mean slowdown averages
    # *finished* jobs only, so a brutal budget that strands most of
    # the queue would otherwise look artificially smooth.
    for row in rows:
        row["neg_completed_jobs"] = -row["completed_jobs"]
    objectives = ("cost", "mean_bounded_slowdown", "neg_completed_jobs")
    front = pareto_front(rows, objectives)
    for row in rows:
        del row["neg_completed_jobs"]

    off = next(r for r in rows if r["label"] == "broker-off")
    on = next(r for r in rows if r["label"] == primary)
    reduction = 1.0 - on["cost"] / off["cost"]

    # Shape claims: the broker buys a measured electricity-cost
    # reduction, the trade-off surfaces as slowdown, and both ends of
    # the sweep survive on the Pareto front.
    assert identical, "federation campaign is not replay-deterministic"
    assert on["cost"] < off["cost"], (
        f"broker-on cost {on['cost']:.2f} not below broker-off "
        f"{off['cost']:.2f}"
    )
    assert rows[0]["completed_jobs"] > 0
    assert len(front) >= 2, (
        "expected a genuine cost/slowdown/completion trade-off "
        f"(front={front}, rows={[(r['cost'], r['mean_bounded_slowdown'], r['completed_jobs']) for r in rows]})"
    )

    lines = [
        "EXP-FEDERATION — nine centers, two days, 6 h coordination epochs",
        f"(workers=2; determinism repeat workers=1: "
        f"{'identical' if identical else 'DIVERGED'})",
        "",
        f"{'variant':>12} {'cost':>9} {'carbon kg':>10} {'energy MWh':>11} "
        f"{'slowdown':>9} {'jobs':>6} {'wall s':>7}",
    ]
    for i, row in enumerate(rows):
        mark = "*" if i in front else " "
        lines.append(
            f"{row['label']:>12} {row['cost']:9.2f} {row['carbon_kg']:10.2f} "
            f"{row['energy_joules'] / 3.6e9:11.3f} "
            f"{row['mean_bounded_slowdown']:9.2f} "
            f"{int(row['completed_jobs']):6d} {row['wall_s']:7.1f}{mark}"
        )
    lines += [
        "",
        f"* Pareto-optimal on (cost, slowdown, completed); broker at "
        f"{FRACTIONS[1]:.0%} budget cuts electricity cost "
        f"{reduction:.1%} vs broker-off",
    ]
    write_artifact("exp-federation", "\n".join(lines) + "\n")

    _update_bench_json(
        "campaign",
        {
            "horizon_days": HORIZON / DAY,
            "epoch_hours": EPOCH / HOUR,
            "sites": len(CENTER_MARKETS),
            "workers": 2,
            "variants": rows,
            "pareto_front": front,
            "pareto_objectives": list(objectives),
            "cost_reduction": reduction,
        },
    )
    _update_bench_json(
        "determinism",
        {
            "identical": identical,
            "fingerprint": runs[primary][1].fingerprint,
            "repeat_workers": 1,
            "repeat_wall_s": repeat_wall,
        },
    )
