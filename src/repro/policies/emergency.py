"""Emergency power enforcement — RIKEN's production deployment.

Table I, RIKEN production: "Automated emergency job killing if power
limit exceeded" and "Pre-run estimate of power usage of each job,
based on temperature".  The policy has two parts:

* an **admission gate**: before a job starts, its power is estimated
  (by default with a temperature-sensitive estimator — chips leak and
  fans spin harder when the machine room is hot) and the start is
  vetoed if the estimate would break the limit;
* an **emergency loop**: if measured power stays above the hard limit
  for longer than a grace period, running jobs are killed —
  highest-power first — until the machine is back under the limit.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.epa import FunctionalCategory
from ..units import check_non_negative, check_positive
from ..workload.job import Job
from .base import Policy


def temperature_aware_estimator(policy: "EmergencyPowerPolicy") -> Callable[[Job, float], float]:
    """RIKEN-style estimator: nominal job power scaled by ambient.

    Power estimates grow ~0.5 %/°C above 20 °C (leakage + cooling
    fans), matching the survey's "based on temperature" phrasing.
    """

    def estimate(job: Job, now: float) -> float:
        machine = policy.simulation.machine
        sample = machine.nodes[0]
        per_node = sample.idle_power + (
            (sample.max_power - sample.idle_power) * job.mean_power_intensity
        )
        nominal = job.nodes * per_node
        site = policy.simulation.site
        if site is not None:
            ambient = site.ambient.temperature(now)
            nominal *= 1.0 + 0.005 * max(0.0, ambient - 20.0)
        return nominal

    return estimate


class EmergencyPowerPolicy(Policy):
    """Hard power limit with prediction gate and emergency kills.

    Parameters
    ----------
    limit_watts:
        The hard machine power limit.
    grace_period:
        Seconds the limit may be exceeded before kills begin (real
        contracts meter over minutes, not instants).
    check_interval:
        Control-loop period.
    estimator:
        ``f(job, now) -> watts`` pre-run estimate; defaults to the
        temperature-aware estimator.
    gate_enabled:
        Set False to disable the admission gate (ablation: kills only).
    """

    name = "emergency-power"

    def __init__(
        self,
        limit_watts: float,
        grace_period: float = 300.0,
        check_interval: float = 60.0,
        estimator: Optional[Callable[[Job, float], float]] = None,
        gate_enabled: bool = True,
    ) -> None:
        super().__init__()
        self.limit_watts = check_positive("limit_watts", limit_watts)
        self.grace_period = check_non_negative("grace_period", grace_period)
        self.control_interval = check_positive("check_interval", check_interval)
        self._estimator = estimator
        self.gate_enabled = gate_enabled
        self.kills = 0
        self.vetoes = 0
        self._over_since: Optional[float] = None

    def on_attach(self) -> None:
        if self._estimator is None:
            self._estimator = temperature_aware_estimator(self)

    # ------------------------------------------------------------------
    def estimate_job_power(self, job: Job, now: float) -> float:
        """The pre-run power estimate recorded on the job."""
        watts = self._estimator(job, now)
        job.power_estimate = watts
        return watts

    def admit(self, job: Job, now: float) -> bool:
        if not self.gate_enabled:
            return True
        current = self.simulation.machine_power()
        estimate = self.estimate_job_power(job, now)
        # The job's nodes currently draw idle power; count the delta.
        idle_already = job.nodes * self.simulation.machine.nodes[0].idle_power
        if current + max(0.0, estimate - idle_already) > self.limit_watts:
            self.vetoes += 1
            return False
        return True

    # ------------------------------------------------------------------
    def on_tick(self, now: float) -> None:
        power = self.simulation.machine_power()
        if power <= self.limit_watts:
            self._over_since = None
            return
        if self._over_since is None:
            self._over_since = now
        if now - self._over_since < self.grace_period:
            return
        # Emergency: kill the hungriest jobs until under the limit.
        running = self.simulation.running_jobs()
        running.sort(
            key=lambda j: self.simulation.job_power(j.job_id), reverse=True
        )
        for job in running:
            if power <= self.limit_watts:
                break
            job_watts = self.simulation.job_power(job.job_id)
            if self.simulation.kill_job(job.job_id, "emergency power limit"):
                self.kills += 1
                power -= job_watts
        self._over_since = None

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "power-limit-monitor",
                FunctionalCategory.POWER_MONITORING,
                f"watch machine power vs {self.limit_watts / 1e3:.0f} kW limit",
            ),
            (
                "emergency-kill",
                FunctionalCategory.POWER_CONTROL,
                "automated job killing on sustained limit excess",
            ),
            (
                "pre-run-estimate",
                FunctionalCategory.RESOURCE_CONTROL,
                "temperature-based per-job power estimate gating starts",
            ),
        ]
