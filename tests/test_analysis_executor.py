"""Tests for the parallel, cached experiment executor.

Builder functions live at module level so they pickle into pool
workers (`tests` is an importable package under the repo root).
"""

from __future__ import annotations

import functools
import json
import pathlib

import pytest

from repro.analysis import (
    ExecutorError,
    ExperimentExecutor,
    ExperimentRunner,
    Variant,
    VariantSpec,
    config_fingerprint,
    render_executor_summary,
)
from repro.cluster import Machine, MachineSpec
from repro.core import ClusterSimulation, EasyBackfillScheduler, FcfsScheduler
from repro.core.metrics import MetricsReport
from repro.simulator import RngStreams, derive_seed
from repro.units import HOUR
from repro.workload import WorkloadGenerator, WorkloadSpec

_SCHEDULERS = {"fcfs": FcfsScheduler, "easy": EasyBackfillScheduler}


def build_sim(seed: int = 0, scheduler: str = "fcfs", nodes: int = 8,
              count: int = 10) -> ClusterSimulation:
    """Small deterministic simulation (picklable module-level builder)."""
    machine = Machine(MachineSpec(name="exec-test", nodes=nodes))
    spec = WorkloadSpec(
        arrival_rate=30.0 / HOUR,
        duration=2.0 * HOUR,
        min_nodes=1,
        max_nodes=max(1, nodes // 2),
        mean_work=HOUR / 6,
    )
    jobs = WorkloadGenerator(spec, RngStreams(seed).stream("wl")).generate(
        count=count
    )
    return ClusterSimulation(machine, _SCHEDULERS[scheduler](), jobs, seed=seed)


def build_metrics_mapping(seed: int = 0) -> dict:
    """Simulation-free analysis task returning a plain metrics dict."""
    return {"answer": 42.0, "seed_echo": float(seed)}


def build_always_crashes(seed: int = 0) -> ClusterSimulation:
    raise RuntimeError("synthetic crash")


def build_flaky(marker: str = "", seed: int = 0) -> dict:
    """Fails on the first attempt, succeeds on the second (via marker file)."""
    path = pathlib.Path(marker)
    if not path.exists():
        path.write_text("attempted")
        raise RuntimeError("first-attempt crash")
    return {"ok": 1.0}


def _specs():
    return [
        VariantSpec(name=name, build=build_sim,
                    kwargs={"scheduler": name}, seed_kwarg="seed")
        for name in ("fcfs", "easy")
    ]


class TestDeterminism:
    def test_parallel_results_identical_to_sequential(self):
        sequential = ExperimentExecutor(workers=1, replicas=2, base_seed=7)
        parallel = ExperimentExecutor(workers=2, replicas=2, base_seed=7)
        seq_records = sequential.run(_specs())
        par_records = parallel.run(_specs())
        assert [(r.variant, r.replica, r.seed) for r in seq_records] == \
               [(r.variant, r.replica, r.seed) for r in par_records]
        assert [r.metrics for r in seq_records] == \
               [r.metrics for r in par_records]

    def test_replica_seeds_derived_through_rng(self):
        executor = ExperimentExecutor(replicas=3, base_seed=11)
        records = executor.run(
            [VariantSpec(name="fcfs", build=build_sim, seed_kwarg="seed")]
        )
        expected = [derive_seed(11, f"fcfs/replica:{i}") for i in range(3)]
        assert [r.seed for r in records] == expected
        assert len(set(expected)) == 3  # replicas use distinct seeds

    def test_mapping_tasks_supported(self):
        records = ExperimentExecutor(base_seed=5).run(
            [VariantSpec(name="m", build=build_metrics_mapping,
                         seed_kwarg="seed")]
        )
        assert records[0].metrics["answer"] == 42.0
        assert records[0].metrics["seed_echo"] == float(
            derive_seed(5, "m/replica:0")
        )


class TestCache:
    def test_warm_cache_executes_nothing(self, tmp_path):
        cache = tmp_path / "cache"
        cold = ExperimentExecutor(workers=1, cache_dir=cache)
        cold_records = cold.run(_specs())
        assert cold.last_executed == 2 and cold.last_cache_hits == 0

        warm = ExperimentExecutor(workers=1, cache_dir=cache)
        warm_records = warm.run(_specs())
        assert warm.last_executed == 0 and warm.last_cache_hits == 2
        assert all(r.from_cache for r in warm_records)
        assert warm.trace.count("executor.task_start") == 0
        assert [r.metrics for r in warm_records] == \
               [r.metrics for r in cold_records]
        # The cached run counters survive the JSON round trip.
        assert [r.events_fired for r in warm_records] == \
               [r.events_fired for r in cold_records]

    def test_config_change_invalidates(self, tmp_path):
        cache = tmp_path / "cache"
        spec = VariantSpec(name="fcfs", build=build_sim,
                           kwargs={"count": 6}, seed_kwarg="seed")
        first = ExperimentExecutor(cache_dir=cache)
        first.run([spec])
        changed = VariantSpec(name="fcfs", build=build_sim,
                              kwargs={"count": 7}, seed_kwarg="seed")
        second = ExperimentExecutor(cache_dir=cache)
        second.run([changed])
        assert second.last_executed == 1  # fingerprint mismatch: re-ran

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = tmp_path / "cache"
        spec = VariantSpec(name="fcfs", build=build_sim, seed_kwarg="seed")
        ExperimentExecutor(cache_dir=cache).run([spec])
        for path in cache.glob("*.json"):
            path.write_text("{ not json")
        again = ExperimentExecutor(cache_dir=cache)
        again.run([spec])
        assert again.last_executed == 1

    def test_cache_files_are_json_under_dir(self, tmp_path):
        cache = tmp_path / "cache"
        ExperimentExecutor(cache_dir=cache).run(
            [VariantSpec(name="m", build=build_metrics_mapping)]
        )
        files = list(cache.glob("*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["schema"] == 1
        assert payload["record"]["metrics"] == {"answer": 42.0,
                                                "seed_echo": 0.0}

    def test_fingerprint_depends_on_builder_and_args(self):
        a = VariantSpec(name="v", build=build_sim, kwargs={"count": 5})
        b = VariantSpec(name="v", build=build_sim, kwargs={"count": 6})
        c = VariantSpec(name="v", build=build_metrics_mapping,
                        kwargs={})
        assert config_fingerprint(a, 1, None) != config_fingerprint(b, 1, None)
        assert config_fingerprint(a, 1, None) != config_fingerprint(c, 1, None)
        assert config_fingerprint(a, 1, None) == config_fingerprint(a, 1, None)
        assert config_fingerprint(a, 1, None) != config_fingerprint(a, 2, None)


class TestRetries:
    def test_bounded_attempts_then_error(self):
        executor = ExperimentExecutor(max_attempts=2)
        with pytest.raises(ExecutorError, match="after 2 attempts"):
            executor.run(
                [VariantSpec(name="boom", build=build_always_crashes)]
            )

    def test_crash_retried_and_counted(self, tmp_path):
        marker = tmp_path / "marker"
        records = ExperimentExecutor(max_attempts=3).run(
            [VariantSpec(name="flaky", build=build_flaky,
                         kwargs={"marker": str(marker)})]
        )
        assert records[0].attempts == 2
        assert records[0].metrics == {"ok": 1.0}

    def test_bad_builder_return_type_rejected(self):
        with pytest.raises(ExecutorError, match="expected a simulation"):
            ExperimentExecutor().run(
                [VariantSpec(name="bad", build=functools.partial(int, 3))]
            )


class TestRunnerIntegration:
    def test_run_all_parallel_matches_sequential(self):
        def variants():
            return [
                Variant(name, functools.partial(build_sim, seed=3,
                                                scheduler=name))
                for name in ("fcfs", "easy")
            ]

        sequential = ExperimentRunner(variants())
        seq_results = sequential.run_all()
        parallel = ExperimentRunner(variants())
        par_results = parallel.run_all(workers=2)
        assert [r.name for r in par_results] == [r.name for r in seq_results]
        for par, seq in zip(par_results, seq_results):
            assert par.metrics.as_dict() == seq.metrics.as_dict()
            assert par.result is None  # metrics-only across the pool
            assert seq.result is not None

    def test_run_all_with_cache_dir_uses_cache(self, tmp_path):
        cache = tmp_path / "cache"

        def variants():
            return [Variant("fcfs", functools.partial(build_sim, seed=9))]

        ExperimentRunner(variants()).run_all(cache_dir=cache)
        executor = ExperimentExecutor(cache_dir=cache)
        runner = ExperimentRunner(variants())
        results = runner.run_all(executor=executor)
        assert executor.last_cache_hits == 1 and executor.last_executed == 0
        assert results[0].metrics.jobs_submitted > 0

    def test_sequential_path_unchanged_by_default(self):
        runner = ExperimentRunner(
            [Variant("fcfs", functools.partial(build_sim, seed=2))]
        )
        results = runner.run_all()
        assert results[0].result is not None
        assert results[0].metrics is results[0].result.metrics


class TestReporting:
    def test_trace_records_wall_clock_progress(self):
        executor = ExperimentExecutor()
        executor.run(_specs())
        categories = [r.category for r in executor.trace.records()]
        assert categories[0] == "executor.sweep_start"
        assert categories[-1] == "executor.sweep_done"
        assert categories.count("executor.task_done") == 2
        done = executor.trace.records("executor.sweep_done")[0]
        assert done.data["executed"] == 2
        assert done.data["wall_seconds"] >= 0.0

    def test_progress_callback_sees_every_record(self):
        seen = []
        executor = ExperimentExecutor(
            progress=lambda done, total, rec: seen.append((done, total,
                                                           rec.variant))
        )
        executor.run(_specs())
        assert len(seen) == 2
        assert all(total == 2 for _done, total, _v in seen)

    def test_render_executor_summary(self):
        records = ExperimentExecutor().run(
            [VariantSpec(name="m", build=build_metrics_mapping)]
        )
        text = render_executor_summary(records)
        assert "variant" in text and "m" in text and "run" in text

    def test_duplicate_variant_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ExperimentExecutor().run(
                [VariantSpec(name="x", build=build_metrics_mapping),
                 VariantSpec(name="x", build=build_metrics_mapping)]
            )


class TestMetricsRoundTrip:
    def test_from_dict_inverts_as_dict(self):
        report = MetricsReport(jobs_submitted=4, jobs_completed=3,
                               mean_wait=12.5,
                               extra={"boots_initiated": 2.0})
        rebuilt = MetricsReport.from_dict(report.as_dict())
        assert rebuilt.as_dict() == report.as_dict()
        assert rebuilt.jobs_submitted == 4
        assert rebuilt.extra["boots_initiated"] == 2.0
