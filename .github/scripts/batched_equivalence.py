"""CI batched-dispatch equivalence check.

For each power backend: run the rich shared scenario once with the
stepped ``run()`` loop and once with ``run_batched()``, both under a
``RunRecorder``, and require the two event fingerprint streams to be
identical at every position (first divergence reported) plus an
identical ``SimulationResult`` fingerprint.  This is the acceptance
contract of the batched dispatcher: cohort execution must be
replay-indistinguishable from step-by-step execution.

Run from the repo root with ``PYTHONPATH=src:.`` (imports the shared
scenario builders from the test package).
"""

from __future__ import annotations

import sys

from repro.state import RunRecorder, compare_streams, result_fingerprint
from tests.state_scenarios import build_rich


def recorded_run(backend: str, batched: bool):
    sim_obj = build_rich(backend=backend)
    with RunRecorder(sim_obj) as rec:
        result = sim_obj.run_batched() if batched else sim_obj.run()
    return result, rec.entries


def main() -> int:
    for backend in ("vector", "scalar"):
        ref_result, ref_entries = recorded_run(backend, batched=False)
        bat_result, bat_entries = recorded_run(backend, batched=True)
        if len(ref_entries) != len(bat_entries):
            print(f"FAIL [{backend}]: stepped fired {len(ref_entries)} "
                  f"events, batched fired {len(bat_entries)}")
            return 1
        report = compare_streams(ref_entries, bat_entries)
        if report is not None:
            print(f"FAIL [{backend}]: event streams diverge: {report}")
            return 1
        if result_fingerprint(bat_result) != result_fingerprint(ref_result):
            print(f"FAIL [{backend}]: event streams match but final "
                  "results differ")
            return 1
        print(f"OK [{backend}]: {len(ref_entries)} events, batched run "
              "replay-identical to stepped run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
