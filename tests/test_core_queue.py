"""Tests for batch queues."""

import pytest

from repro.core import JobQueue, QueueConfig
from repro.errors import QueueError


class TestQueueConfig:
    def test_admits_within_limits(self, job_factory):
        cfg = QueueConfig("q", max_nodes=8, max_walltime=1000.0)
        assert cfg.admits(job_factory(nodes=8, walltime=1000.0))
        assert not cfg.admits(job_factory(nodes=9))
        assert not cfg.admits(job_factory(walltime=2000.0))

    def test_user_restriction(self, job_factory):
        cfg = QueueConfig("q", allowed_users=frozenset({"alice"}))
        assert cfg.admits(job_factory(user="alice"))
        assert not cfg.admits(job_factory(user="bob"))


class TestJobQueue:
    def test_default_queue_exists(self, job_factory):
        queue = JobQueue()
        queue.submit(job_factory())
        assert len(queue) == 1

    def test_duplicate_submit_rejected(self, job_factory):
        queue = JobQueue()
        job = job_factory()
        queue.submit(job)
        with pytest.raises(QueueError):
            queue.submit(job)

    def test_non_pending_rejected(self, job_factory):
        queue = JobQueue()
        job = job_factory()
        job.start(0.0, [0])
        with pytest.raises(QueueError):
            queue.submit(job)

    def test_unknown_queue_falls_back_to_default(self, job_factory):
        queue = JobQueue([QueueConfig("default")])
        job = job_factory(queue="mystery")
        queue.submit(job)
        assert len(queue) == 1

    def test_no_default_and_unknown_raises(self, job_factory):
        queue = JobQueue([QueueConfig("batch")])
        with pytest.raises(QueueError):
            queue.submit(job_factory(queue="mystery"))

    def test_limit_violation_raises(self, job_factory):
        queue = JobQueue([QueueConfig("default", max_nodes=4)])
        with pytest.raises(QueueError):
            queue.submit(job_factory(nodes=8))

    def test_remove(self, job_factory):
        queue = JobQueue()
        job = job_factory()
        queue.submit(job)
        assert queue.remove(job.job_id) is job
        assert len(queue) == 0
        with pytest.raises(QueueError):
            queue.remove(job.job_id)

    def test_pending_order_submit_time(self, job_factory):
        queue = JobQueue()
        late = job_factory(job_id="late", submit=10.0)
        early = job_factory(job_id="early", submit=1.0)
        queue.submit(late)
        queue.submit(early)
        assert [j.job_id for j in queue.pending()] == ["early", "late"]

    def test_pending_order_queue_priority(self, job_factory):
        queue = JobQueue([QueueConfig("default"), QueueConfig("vip", priority=5)])
        normal = job_factory(job_id="n", submit=0.0)
        vip = job_factory(job_id="v", submit=10.0, queue="vip")
        queue.submit(normal)
        queue.submit(vip)
        assert [j.job_id for j in queue.pending()] == ["v", "n"]

    def test_pending_order_job_priority(self, job_factory):
        queue = JobQueue()
        low = job_factory(job_id="low", submit=0.0, priority=0)
        high = job_factory(job_id="high", submit=5.0, priority=9)
        queue.submit(low)
        queue.submit(high)
        assert [j.job_id for j in queue.pending()] == ["high", "low"]

    def test_backlog_nodes(self, job_factory):
        queue = JobQueue()
        queue.submit(job_factory(job_id="a", nodes=3))
        queue.submit(job_factory(job_id="b", nodes=5))
        assert queue.backlog_nodes() == 8

    def test_by_queue_grouping(self, job_factory):
        queue = JobQueue([QueueConfig("default"), QueueConfig("vip", priority=1)])
        queue.submit(job_factory(job_id="a"))
        queue.submit(job_factory(job_id="b", queue="vip"))
        groups = queue.by_queue()
        assert [j.job_id for j in groups["vip"]] == ["b"]
        assert [j.job_id for j in groups["default"]] == ["a"]

    def test_duplicate_queue_names_rejected(self):
        with pytest.raises(QueueError):
            JobQueue([QueueConfig("q"), QueueConfig("q")])

    def test_contains(self, job_factory):
        queue = JobQueue()
        job = job_factory()
        queue.submit(job)
        assert job.job_id in queue
        assert "nope" not in queue


class TestPendingInvalidation:
    """In-place mutation of queued jobs must invalidate the order memo
    and the SoA mirror through :meth:`JobQueue.notify_job_changed`
    (moldable reshaping and requeue-time priority edits hit this)."""

    def test_priority_mutation_reorders_after_notify(self, job_factory):
        queue = JobQueue()
        first = job_factory(job_id="a", submit=0.0, priority=5)
        second = job_factory(job_id="b", submit=1.0, priority=0)
        queue.submit(first)
        queue.submit(second)
        assert [j.job_id for j in queue.pending()] == ["a", "b"]
        # Mutate the sort key of a queued job in place, as the
        # moldable/requeue paths do, then notify.
        second.priority = 9
        queue.notify_job_changed("b")
        assert [j.job_id for j in queue.pending()] == ["b", "a"]

    def test_nodes_mutation_refreshes_arrays(self, job_factory):
        queue = JobQueue()
        job = job_factory(job_id="a", nodes=4, walltime=100.0)
        queue.submit(job)
        nodes, wall = queue.pending_arrays()
        assert nodes.tolist() == [4] and wall.tolist() == [100.0]
        job.nodes = 16
        job.walltime_request = 400.0
        queue.notify_job_changed("a")
        nodes, wall = queue.pending_arrays()
        assert nodes.tolist() == [16] and wall.tolist() == [400.0]

    def test_notify_unknown_job_raises(self, job_factory):
        queue = JobQueue()
        with pytest.raises(QueueError):
            queue.notify_job_changed("ghost")

    def test_arrays_match_pending_order(self, job_factory):
        queue = JobQueue([QueueConfig("default"), QueueConfig("vip", priority=3)])
        queue.submit(job_factory(job_id="a", nodes=2, walltime=50.0, submit=2.0))
        queue.submit(job_factory(job_id="v", nodes=7, walltime=70.0, queue="vip"))
        queue.submit(job_factory(job_id="b", nodes=3, walltime=60.0, submit=1.0))
        order = queue.pending()
        nodes, wall = queue.pending_arrays()
        assert nodes.tolist() == [j.nodes for j in order]
        assert wall.tolist() == [j.walltime_request for j in order]


class TestJobTableMirror:
    """The SoA mirror grows, tombstones and compacts without ever
    disagreeing with the dict of queued jobs."""

    def test_growth_past_initial_capacity(self, job_factory):
        queue = JobQueue()
        for i in range(50):
            queue.submit(job_factory(job_id=f"j{i:02d}", nodes=i + 1, submit=float(i)))
        assert queue._table.live_count == 50
        nodes, _ = queue.pending_arrays()
        assert nodes.tolist() == list(range(1, 51))

    def test_compaction_after_heavy_removal(self, job_factory):
        queue = JobQueue()
        for i in range(80):
            queue.submit(job_factory(job_id=f"j{i:02d}", nodes=i + 1, submit=float(i)))
        for i in range(70):
            queue.remove(f"j{i:02d}")
        table = queue._table
        # Dead rows dominated at some point -> compaction ran.
        assert table.row_count < 80
        assert table.live_count == 10
        nodes, _ = queue.pending_arrays()
        assert nodes.tolist() == list(range(71, 81))
        assert table.live_ids() == [f"j{i:02d}" for i in range(70, 80)]

    def test_restore_jobs_rebuilds_mirror(self, job_factory):
        queue = JobQueue([QueueConfig("default"), QueueConfig("vip", priority=2)])
        jobs = {}
        for i in range(6):
            job = job_factory(
                job_id=f"j{i}", nodes=i + 1, submit=float(i),
                queue="vip" if i % 2 else "default",
            )
            jobs[job.job_id] = job
        queue.restore_jobs(jobs)
        assert len(queue) == 6
        assert queue._table.live_count == 6
        order = queue.pending()
        nodes, wall = queue.pending_arrays()
        assert nodes.tolist() == [j.nodes for j in order]
        assert wall.tolist() == [j.walltime_request for j in order]
        # vip jobs sort ahead of default ones.
        assert [j.job_id for j in order[:3]] == ["j1", "j3", "j5"]
