"""Tests for the numpy version-compatibility shims."""

import importlib

import numpy as np
import pytest

import repro.compat


class TestTrapezoid:
    def test_integrates_like_numpy(self):
        x = np.array([0.0, 1.0, 3.0])
        y = np.array([0.0, 2.0, 2.0])
        assert repro.compat.trapezoid(y, x) == pytest.approx(5.0)

    def test_falls_back_to_trapz_on_numpy1(self, monkeypatch):
        # Simulate numpy 1.x: no np.trapezoid, only np.trapz.
        monkeypatch.delattr(np, "trapezoid", raising=False)
        monkeypatch.setattr(np, "trapz", lambda y, x=None: 123.0,
                            raising=False)
        try:
            module = importlib.reload(repro.compat)
            assert module.trapezoid([0.0, 1.0], [0.0, 1.0]) == 123.0
        finally:
            monkeypatch.undo()
            importlib.reload(repro.compat)

    def test_meter_window_average_uses_shim(self, sim):
        from repro.power.meter import PowerMeter

        meter = PowerMeter(sim, lambda: 100.0, interval=10.0)
        meter.start()
        sim.run(until=60.0)
        assert meter.window_average(30.0) == pytest.approx(100.0)
