"""Experiments ``exp-topology`` and ``exp-moldable``.

* Q6 of the questionnaire asks about "topology-aware task allocation,
  as a way of ... indirectly improving energy consumption (for
  example, by improving application performance, resulting in reduced
  wallclock time)".  With the placement-to-performance coupling
  enabled, the bench quantifies that claim: topology-aware allocation
  vs first-fit on a fragmented machine with communication-heavy jobs.
* Moldable-job shaping (Patki [37], Mu'alem [35] lineage): choosing
  the configuration against free nodes and power headroom beats the
  user's fixed request.
"""

from __future__ import annotations

import copy

from repro.analysis.report import render_columns
from repro.cluster import Machine, MachineSpec
from repro.cluster.topology import build_fat_tree
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.core.allocator import FirstFitAllocator, TopologyAwareAllocator
from repro.policies import MoldablePolicy
from repro.simulator import RngStreams
from repro.units import HOUR
from repro.workload import WorkloadGenerator, WorkloadSpec
from repro.workload.phases import BALANCED, COMM_BOUND
from tests.conftest import make_job

from .conftest import write_artifact


def _fragmenting_workload():
    """Comm-heavy 4-node jobs interleaved with 1-node fillers that
    fragment the free pool — the regime where allocation policy shows."""
    jobs = []
    rng = RngStreams(91).stream("frag")
    for i in range(30):
        jobs.append(make_job(job_id=f"c{i}", nodes=4,
                             work=600.0, walltime=3000.0,
                             profile=COMM_BOUND, submit=i * 120.0))
        jobs.append(make_job(job_id=f"f{i}", nodes=1,
                             work=float(rng.uniform(200, 900)),
                             walltime=3000.0, profile=BALANCED,
                             submit=i * 120.0 + 1.0))
    return jobs


def test_bench_topology_allocation(benchmark, artifact_dir):
    def sweep():
        out = {}
        for label, allocator in (("first-fit", FirstFitAllocator()),
                                 ("topology-aware", TopologyAwareAllocator())):
            machine = Machine(
                MachineSpec(name="m", nodes=64, nodes_per_cabinet=8),
                topology=build_fat_tree(64, arity=8),
            )
            sim = ClusterSimulation(
                machine, EasyBackfillScheduler(allocator=allocator),
                copy.deepcopy(_fragmenting_workload()),
                comm_penalty=0.5, seed=5,
            )
            result = sim.run()
            comm_runs = [j.run_time for j in result.completed_jobs()
                         if j.job_id.startswith("c")]
            out[label] = (result.metrics,
                          sum(comm_runs) / len(comm_runs))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [label, f"{mean_run:.0f}", f"{m.makespan / 3600:.2f}",
         f"{m.total_energy_mwh:.4f}", f"{m.jobs_completed}"]
        for label, (m, mean_run) in results.items()
    ]
    write_artifact(
        "exp-topology",
        "EXP-TOPOLOGY — Q6: allocation strategy vs comm-heavy jobs "
        "(fat-tree, fragmented pool, penalty 0.5)\n\n"
        + render_columns(
            ["allocator", "comm job run[s]", "makespan[h]", "energy[MWh]",
             "done"],
            rows,
        ),
    )

    ff_metrics, ff_run = results["first-fit"]
    ta_metrics, ta_run = results["topology-aware"]
    # Q6's claim: better placement -> shorter comm-job wallclock ->
    # less energy-to-solution.
    assert ta_run < ff_run
    assert ta_metrics.total_energy_joules <= ff_metrics.total_energy_joules * 1.01
    assert ta_metrics.jobs_completed == ff_metrics.jobs_completed


def test_bench_moldable_shaping(benchmark, artifact_dir):
    def make_spec():
        return WorkloadSpec(
            arrival_rate=60.0 / HOUR, duration=8 * HOUR,
            max_nodes=16, mean_work=0.5 * HOUR,
            moldable_fraction=1.0,
        )

    def sweep():
        out = {}
        base = WorkloadGenerator(
            make_spec(), RngStreams(93).stream("mold")
        ).generate(count=120)
        for label, policies in (("fixed-shape", []),
                                ("moldable", [MoldablePolicy(prefer_speed=True)])):
            machine = Machine(MachineSpec(name="m", nodes=48))
            sim = ClusterSimulation(
                machine, EasyBackfillScheduler(), copy.deepcopy(base),
                policies=policies, seed=5,
            )
            result = sim.run()
            out[label] = result.metrics
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [label, f"{m.mean_wait:.0f}", f"{m.mean_bounded_slowdown:.2f}",
         f"{m.makespan / 3600:.2f}", f"{m.jobs_completed}"]
        for label, m in results.items()
    ]
    write_artifact(
        "exp-moldable",
        "EXP-MOLDABLE — fixed request vs moldable shaping "
        "(all jobs carry 3 configurations)\n\n"
        + render_columns(
            ["mode", "wait[s]", "slowdown", "makespan[h]", "done"], rows,
        ),
    )

    fixed = results["fixed-shape"]
    moldable = results["moldable"]
    # Shaping to the free pool improves responsiveness.
    assert moldable.mean_bounded_slowdown <= fixed.mean_bounded_slowdown
    assert moldable.jobs_completed == fixed.jobs_completed