"""Batched execution is replay-identical to stepped execution.

The acceptance contract of the batched dispatcher: over the shared
``state_scenarios`` suite, ``ClusterSimulation.run_batched()`` produces
the *same fingerprint stream* — every event, in order, leaving the
same post-state — as the stepped ``run()`` loop, verified through the
``repro.state`` first-divergence harness.  Snapshots taken mid-run
restore into either execution path bit-identically, and restored
periodic chains keep their phase-locked firing grid.
"""

from __future__ import annotations

import pytest

from repro.simulator.engine import PeriodicChain
from repro.state import RunRecorder, compare_streams, restore, snapshot

from .state_scenarios import build_rich, build_small, step_until


def _run_recorded(sim_obj, batched: bool):
    with RunRecorder(sim_obj) as rec:
        result = sim_obj.run_batched() if batched else sim_obj.run()
    return result, rec.entries


SCENARIOS = {
    "small-fcfs": lambda backend: build_small(backend=backend,
                                              scheduler="fcfs"),
    "small-easy": lambda backend: build_small(backend=backend,
                                              scheduler="easy"),
    "rich": lambda backend: build_rich(backend=backend),
}


class TestBatchedReplayIdentity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("backend", ["vector", "scalar"])
    def test_fingerprint_stream_identical(self, name, backend):
        build = SCENARIOS[name]
        ref_result, ref_entries = _run_recorded(build(backend), batched=False)
        bat_result, bat_entries = _run_recorded(build(backend), batched=True)

        assert len(bat_entries) == len(ref_entries)
        report = compare_streams(ref_entries, bat_entries)
        assert report is None, str(report)

        assert bat_result.final_time == ref_result.final_time
        assert bat_result.metrics.makespan == ref_result.metrics.makespan
        assert bat_result.meter.energy_joules == ref_result.meter.energy_joules
        for rj, bj in zip(ref_result.jobs, bat_result.jobs):
            assert rj.job_id == bj.job_id
            assert rj.state is bj.state
            assert rj.start_time == bj.start_time
            assert rj.end_time == bj.end_time
            assert rj.energy_joules == bj.energy_joules

    def test_batch_policy_tick_effects_identical(self):
        # build_rich carries IdleShutdownPolicy: its on_tick_batch
        # (SoA candidate ranking) must leave the same boots/shutdowns
        # and the same accumulated energy estimate as the scalar tick.
        ref = build_rich()
        bat = build_rich()
        ref.run()
        bat.run_batched()
        assert bat.rm.boots_initiated == ref.rm.boots_initiated
        assert bat.rm.shutdowns_initiated == ref.rm.shutdowns_initiated
        ref_policy = ref.policies[1]
        bat_policy = bat.policies[1]
        assert bat_policy.energy_saved_estimate == ref_policy.energy_saved_estimate


class TestBatchedSnapshotRestore:
    def test_snapshot_restores_into_batched_run(self):
        # Reference: stepped run recorded end to end.
        ref = build_small()
        with RunRecorder(ref) as rec:
            step_until(ref, 700.0)
            state = snapshot(ref)
            ref.run()
        # Restore the mid-run checkpoint and finish it *batched*.
        restored = restore(state, build_small)
        with RunRecorder(restored) as rec2:
            restored.run_batched()
        report = compare_streams(rec.entries, rec2.entries)
        assert report is None, str(report)

    def test_snapshot_during_batched_run_restores(self):
        # Snapshot taken from *inside* a batched cohort: the grab event
        # runs at STATE priority at a meter instant, so the meter's
        # MONITOR event is still parked in a dispatch bucket when the
        # state subsystem walks iter_live_events.  The reference run
        # gets a same-seq no-op so both event streams line up.
        from repro.simulator.events import EventPriority

        ref = build_small()
        ref.prepare()
        ref.sim.at(720.0, lambda: None, priority=EventPriority.STATE,
                   name="grab")
        with RunRecorder(ref) as rec:
            ref.run()

        captured = {}
        target = build_small()

        def grab():
            assert target.sim._buckets  # mid-cohort: meter event parked
            captured["state"] = snapshot(target)

        target.prepare()
        target.sim.at(720.0, grab, priority=EventPriority.STATE, name="grab")
        with RunRecorder(target):
            target.run_batched()

        restored = restore(captured["state"], build_small)
        with RunRecorder(restored) as rec2:
            restored.run()
        report = compare_streams(rec.entries, rec2.entries)
        assert report is None, str(report)


def _chain_grids(sim_obj):
    """(name -> (epoch, index, interval, next_time)) for pending chains."""
    grids = {}
    for event in sim_obj.sim.iter_live_events():
        action = event.action
        owner = getattr(action, "__self__", None)
        if isinstance(owner, PeriodicChain):
            grids[owner.name] = (
                owner.epoch, owner.index, owner.interval, event.time
            )
    return grids


class TestRestoredChainGrid:
    def test_restored_chains_keep_phase_locked_grid(self):
        sim_obj = step_until(build_small(), 700.0)
        original = _chain_grids(sim_obj)
        assert original  # meter + schedule-retry at minimum
        restored = restore(snapshot(sim_obj), build_small)
        assert _chain_grids(restored) == original

    def test_restored_chain_future_firings_match_original(self):
        # Restore a mid-run snapshot, advance original and restored in
        # lockstep, and compare the chains' grids tick by tick.
        ref = build_small()
        step_until(ref, 700.0)
        state = snapshot(ref)
        ref_grid = _chain_grids(ref)

        restored = restore(state, build_small)
        for _ in range(200):
            ref.sim.step()
            restored.sim.step()
        assert _chain_grids(restored) == _chain_grids(ref)
        # And the grid stayed phase-locked to the original epoch.
        for name, (epoch, index, interval, next_time) in _chain_grids(
            restored
        ).items():
            assert next_time == epoch + index * interval
            assert ref_grid[name][0] == epoch
